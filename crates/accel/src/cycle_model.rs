//! End-to-end latency model of the accelerator (Tables III and IV).
//!
//! Combines the per-layer schedule from [`crate::scheduler`] with the number
//! of encoder layers and the fixed per-inference overheads (activation
//! transfer between the CPU and the FPGA, initial weight prefetch of the
//! first tile) to produce the latency figures the paper reports.

use crate::config::AcceleratorConfig;
use crate::dataflow::EncoderShape;
use crate::memory::DdrModel;
use crate::scheduler::{ScheduleTrace, Scheduler};
use fqbert_quant::LayerBits;

/// Per-component cycle breakdown of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Cycles the PE array is busy across all layers.
    pub pe_cycles: u64,
    /// Cycles spent by the softmax core (overlapped).
    pub softmax_cycles: u64,
    /// Cycles spent by the LN core (overlapped).
    pub ln_cycles: u64,
    /// DMA cycles streaming weights (overlapped).
    pub dma_cycles: u64,
    /// PE stall cycles waiting for weights.
    pub dma_stall_cycles: u64,
    /// Cycles moving activations between host and FPGA.
    pub host_io_cycles: u64,
}

/// Latency estimate for one full inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Critical-path cycles of the whole inference.
    pub total_cycles: u64,
    /// Latency in milliseconds at the configured clock.
    pub latency_ms: f64,
    /// Per-layer critical path cycles.
    pub cycles_per_layer: u64,
    /// Number of encoder layers.
    pub layers: usize,
    /// Component breakdown.
    pub breakdown: LatencyBreakdown,
    /// Schedule trace of a single representative layer (for Fig. 5).
    pub layer_trace: ScheduleTrace,
    /// Effective throughput in giga-MACs per second.
    pub effective_gmacs_per_sec: f64,
}

impl LatencyReport {
    /// Frames (inferences) per second implied by the latency.
    pub fn fps(&self) -> f64 {
        1e3 / self.latency_ms
    }
}

/// Estimates the inference latency of a BERT encoder stack of `layers` layers
/// of the given shape on the accelerator configuration.
pub fn estimate_latency(
    config: &AcceleratorConfig,
    shape: &EncoderShape,
    layers: usize,
) -> LatencyReport {
    let bits = vec![LayerBits::uniform(config.weight_bits); layers];
    estimate_latency_mixed(config, shape, &bits)
}

/// Estimates the inference latency of an encoder stack whose layers carry
/// their own per-site weight bit-widths (`layer_bits[l]` describes layer
/// `l`; the stack depth is `layer_bits.len()`).
///
/// With every layer at the accelerator's uniform width this is exactly
/// [`estimate_latency`]: each layer contributes its own steady-state PE
/// period, the trailing softmax/LN work of the last layer is paid once, and
/// the host I/O overhead is added on top.
pub fn estimate_latency_mixed(
    config: &AcceleratorConfig,
    shape: &EncoderShape,
    layer_bits: &[LayerBits],
) -> LatencyReport {
    let scheduler = Scheduler::new(config.clone());
    let layers = layer_bits.len();
    let traces: Vec<ScheduleTrace> = layer_bits
        .iter()
        .map(|bits| scheduler.schedule_layer_mixed(shape, bits))
        .collect();
    let ddr = DdrModel::from_config(config);

    // Host ↔ FPGA activation transfer: the embedding output goes in once and
    // the final hidden state comes back once (int8 activations).
    let act_bytes = (shape.seq_len * shape.hidden) as u64;
    let host_io_cycles = 2 * ddr.transfer_cycles(act_bytes, 1);

    // In steady state consecutive layers overlap their trailing softmax/LN
    // work with the next layer's matrix stages, so each layer's period is
    // its own PE critical path; the trailing non-PE work of the final layer
    // is paid once at the end.
    let pe_critical_sum: u64 = traces.iter().map(|t| t.pe_critical_cycles).sum();
    let trailing_cycles = traces
        .last()
        .map(|t| t.total_cycles - t.pe_critical_cycles)
        .unwrap_or(0);
    let total_cycles = pe_critical_sum + trailing_cycles + host_io_cycles;
    let latency_ms = total_cycles as f64 / config.frequency_hz * 1e3;

    let macs_per_layer: u64 = crate::dataflow::layer_macs(shape);
    let effective_gmacs_per_sec =
        (macs_per_layer * layers as u64) as f64 / (latency_ms / 1e3) / 1e9;

    let breakdown = LatencyBreakdown {
        pe_cycles: traces.iter().map(|t| t.pe_busy_cycles).sum(),
        softmax_cycles: traces.iter().map(|t| t.softmax_cycles).sum(),
        ln_cycles: traces.iter().map(|t| t.ln_cycles).sum(),
        dma_cycles: traces.iter().map(|t| t.dma_cycles).sum(),
        dma_stall_cycles: traces.iter().map(|t| t.dma_stall_cycles).sum(),
        host_io_cycles,
    };
    // Representative per-layer period and trace: the most expensive layer
    // (for uniform stacks every layer is identical, preserving the uniform
    // report exactly).
    let layer_trace = traces
        .iter()
        .max_by_key(|t| t.pe_critical_cycles)
        .cloned()
        .unwrap_or_else(|| scheduler.schedule_layer(shape));

    LatencyReport {
        total_cycles,
        latency_ms,
        cycles_per_layer: if layers == 0 {
            0
        } else {
            pe_critical_sum / layers as u64
        },
        layers,
        breakdown,
        layer_trace,
        effective_gmacs_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_base_latency(config: &AcceleratorConfig) -> f64 {
        estimate_latency(config, &EncoderShape::bert_base(), 12).latency_ms
    }

    #[test]
    fn zcu102_n8_m16_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu102_n8_m16());
        assert!(
            (ms - 43.89).abs() / 43.89 < 0.05,
            "ZCU102 (8,16) latency {ms} ms deviates from 43.89 ms"
        );
    }

    #[test]
    fn zcu102_n16_m8_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu102_n16_m8());
        assert!(
            (ms - 45.35).abs() / 45.35 < 0.05,
            "ZCU102 (16,8) latency {ms} ms deviates from 45.35 ms"
        );
    }

    #[test]
    fn zcu111_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu111_n16_m16());
        assert!(
            (ms - 23.79).abs() / 23.79 < 0.05,
            "ZCU111 latency {ms} ms deviates from 23.79 ms"
        );
    }

    #[test]
    fn ordering_of_configurations_is_preserved() {
        let a = bert_base_latency(&AcceleratorConfig::zcu102_n8_m16());
        let b = bert_base_latency(&AcceleratorConfig::zcu102_n16_m8());
        let c = bert_base_latency(&AcceleratorConfig::zcu111_n16_m16());
        assert!(a < b, "(8,16) must beat (16,8): {a} vs {b}");
        assert!(c < a, "ZCU111 must beat ZCU102: {c} vs {a}");
    }

    #[test]
    fn latency_scales_linearly_with_layers() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let shape = EncoderShape::bert_base();
        let six = estimate_latency(&cfg, &shape, 6);
        let twelve = estimate_latency(&cfg, &shape, 12);
        let ratio = twelve.latency_ms / six.latency_ms;
        assert!((1.9..2.1).contains(&ratio));
    }

    #[test]
    fn report_breakdown_is_consistent() {
        let report = estimate_latency(
            &AcceleratorConfig::zcu111_n16_m16(),
            &EncoderShape::bert_base(),
            12,
        );
        assert_eq!(report.layers, 12);
        assert!(report.fps() > 0.0);
        assert!(report.effective_gmacs_per_sec > 100.0);
        assert!(report.breakdown.pe_cycles <= report.total_cycles);
        assert_eq!(report.breakdown.dma_stall_cycles, 0);
    }

    #[test]
    fn mixed_estimate_with_uniform_bits_matches_the_uniform_path() {
        let shape = EncoderShape::bert_base();
        for cfg in [
            AcceleratorConfig::zcu102_n8_m16(),
            AcceleratorConfig::zcu102_n16_m8(),
            AcceleratorConfig::zcu111_n16_m16(),
        ] {
            let uniform = estimate_latency(&cfg, &shape, 12);
            let bits = vec![LayerBits::uniform(cfg.weight_bits); 12];
            let mixed = estimate_latency_mixed(&cfg, &shape, &bits);
            assert_eq!(uniform, mixed);
        }
    }

    #[test]
    fn mixed_stacks_land_between_the_uniform_extremes() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let shape = EncoderShape::bert_base();
        let w4 = estimate_latency_mixed(&cfg, &shape, &vec![LayerBits::uniform(4); 12]);
        let w8 = estimate_latency_mixed(&cfg, &shape, &vec![LayerBits::uniform(8); 12]);
        // Half the layers run their FFNs at 8 bits, the rest stay at 4.
        let mut wide = LayerBits::uniform(4);
        wide.ffn1 = 8;
        wide.ffn2 = 8;
        let mut bits = vec![LayerBits::uniform(4); 6];
        bits.extend_from_slice(&[wide; 6]);
        let mixed = estimate_latency_mixed(&cfg, &shape, &bits);
        assert!(
            w4.total_cycles < mixed.total_cycles && mixed.total_cycles < w8.total_cycles,
            "w4 {} < mixed {} < w8 {} violated",
            w4.total_cycles,
            mixed.total_cycles,
            w8.total_cycles
        );
        // The representative layer trace is the most expensive layer.
        assert_eq!(
            mixed.layer_trace.pe_critical_cycles,
            Scheduler::new(cfg.clone())
                .schedule_layer_mixed(&shape, &wide)
                .pe_critical_cycles
        );
    }

    #[test]
    fn shorter_sequences_are_faster() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let mut short_shape = EncoderShape::bert_base();
        short_shape.seq_len = 64;
        let short = estimate_latency(&cfg, &short_shape, 12);
        let long = estimate_latency(&cfg, &EncoderShape::bert_base(), 12);
        assert!(short.latency_ms < long.latency_ms);
    }
}
