//! The encoder-layer dataflow (paper Fig. 5).
//!
//! One encoder layer is executed as a sequence of stages, each using a
//! specific compute unit and a specific weight tensor:
//!
//! `X·Wq → X·Wk → X·Wv → Q·Kᵀ → Softmax → Attn·V → (+O-proj) Add&LN →
//! FFN1 → FFN2 → Add&LN`
//!
//! Each stage is further divided into sub-stages so that only the weights of
//! the next sub-stage have to be resident on chip — this is what makes the
//! double-buffered weight streaming of the scheduler possible.
//!
//! The BIM's multipliers are natively 8b×4b (paper §III-B), so a weighted
//! stage's execution mode follows its weight bit-width: weights of at most
//! 4 bits run one MAC per multiplier, while wider weights are split into two
//! nibbles and consume a multiplier pair per product — the same 8b×8b mode
//! the activation×activation stages use, at half the MAC rate.
//! [`encoder_layer_stages_mixed`] exposes this per site, which is what makes
//! the cycle model sensitive to mixed-precision assignments.

use fqbert_quant::LayerBits;

/// Shape of the encoder layer being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderShape {
    /// Sequence length (number of tokens).
    pub seq_len: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// FFN intermediate dimension.
    pub intermediate: usize,
    /// Number of attention heads.
    pub heads: usize,
}

impl EncoderShape {
    /// The BERT-base shape at the paper's sequence length of 128.
    pub fn bert_base() -> Self {
        Self {
            seq_len: 128,
            hidden: 768,
            intermediate: 3072,
            heads: 12,
        }
    }
}

/// Which unit executes a stage and at which operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Matrix multiply on the PE array with 8-bit activations × 4-bit weights.
    MatmulAct8Weight4,
    /// Matrix multiply on the PE array with 8-bit × 8-bit operands.
    MatmulAct8Act8,
    /// Softmax core.
    Softmax,
    /// Layer-norm core (`Add & LN`).
    LayerNorm,
}

/// One stage of the Fig. 5 dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncoderStage {
    /// Human-readable name matching the labels of Fig. 5.
    pub name: String,
    /// Which unit runs the stage.
    pub kind: StageKind,
    /// Multiply–accumulate operations in the stage (zero for softmax / LN).
    pub macs: u64,
    /// Weight bytes that must be streamed from DDR before the stage can
    /// finish (zero for stages without weights).
    pub weight_bytes: u64,
    /// Output elements produced (activations written back to on-chip
    /// buffers).
    pub output_elements: u64,
}

impl EncoderStage {
    fn matmul(name: &str, kind: StageKind, macs: u64, weight_bytes: u64, outputs: u64) -> Self {
        Self {
            name: name.to_string(),
            kind,
            macs,
            weight_bytes,
            output_elements: outputs,
        }
    }
}

/// Execution mode of a weighted matrix stage at a given weight bit-width:
/// up to 4-bit weights use the BIM's native 8b×4b multipliers; wider weights
/// are nibble-split over a multiplier pair (the 8b×8b mode, half the rate).
fn weighted_stage_kind(weight_bits: u32) -> StageKind {
    if weight_bits <= 4 {
        StageKind::MatmulAct8Weight4
    } else {
        StageKind::MatmulAct8Act8
    }
}

/// Decomposes one encoder layer into the stages of Fig. 5.
///
/// `weight_bits` is the storage width of the streamed weights (4 for
/// FQ-BERT), applied uniformly to every weighted stage; see
/// [`encoder_layer_stages_mixed`] for per-site widths.
pub fn encoder_layer_stages(shape: &EncoderShape, weight_bits: u32) -> Vec<EncoderStage> {
    encoder_layer_stages_mixed(shape, &LayerBits::uniform(weight_bits))
}

/// Decomposes one encoder layer into the stages of Fig. 5 with per-site
/// weight bit-widths.
///
/// Each weighted stage streams its own `bits`-wide weights (fewer DMA bytes
/// at lower widths) and runs in the BIM mode its width selects: ≤ 4-bit
/// weights at the full 8b×4b MAC rate, wider weights nibble-split at the
/// half-rate 8b×8b mode. The activation×activation stages (`Q·Kᵀ`,
/// `Attn·V`) are unaffected by weight widths.
pub fn encoder_layer_stages_mixed(shape: &EncoderShape, bits: &LayerBits) -> Vec<EncoderStage> {
    let s = shape.seq_len as u64;
    let h = shape.hidden as u64;
    let i = shape.intermediate as u64;
    let wb = |params: u64, bits: u32| (params * u64::from(bits)).div_ceil(8);

    let mut stages = Vec::new();
    for (name, bits) in [("X·Wq", bits.q), ("X·Wk", bits.k), ("X·Wv", bits.v)] {
        stages.push(EncoderStage::matmul(
            name,
            weighted_stage_kind(bits),
            s * h * h,
            wb(h * h, bits),
            s * h,
        ));
    }
    stages.push(EncoderStage::matmul(
        "Q·Kᵀ",
        StageKind::MatmulAct8Act8,
        s * s * h,
        0,
        (shape.heads as u64) * s * s,
    ));
    stages.push(EncoderStage {
        name: "Softmax".to_string(),
        kind: StageKind::Softmax,
        macs: 0,
        weight_bytes: 0,
        output_elements: (shape.heads as u64) * s * s,
    });
    stages.push(EncoderStage::matmul(
        "Attn·V",
        StageKind::MatmulAct8Act8,
        s * s * h,
        0,
        s * h,
    ));
    stages.push(EncoderStage::matmul(
        "O-proj",
        weighted_stage_kind(bits.attn_output),
        s * h * h,
        wb(h * h, bits.attn_output),
        s * h,
    ));
    stages.push(EncoderStage {
        name: "Add&LN".to_string(),
        kind: StageKind::LayerNorm,
        macs: 0,
        weight_bytes: 0,
        output_elements: s * h,
    });
    stages.push(EncoderStage::matmul(
        "FFN1",
        weighted_stage_kind(bits.ffn1),
        s * h * i,
        wb(h * i, bits.ffn1),
        s * i,
    ));
    stages.push(EncoderStage::matmul(
        "FFN2",
        weighted_stage_kind(bits.ffn2),
        s * i * h,
        wb(i * h, bits.ffn2),
        s * h,
    ));
    stages.push(EncoderStage {
        name: "Add&LN (FFN)".to_string(),
        kind: StageKind::LayerNorm,
        macs: 0,
        weight_bytes: 0,
        output_elements: s * h,
    });
    stages
}

/// Total MACs of one encoder layer (consistency helper).
pub fn layer_macs(shape: &EncoderShape) -> u64 {
    encoder_layer_stages(shape, 4).iter().map(|s| s.macs).sum()
}

/// Total weight bytes streamed per encoder layer at the given bit-width.
pub fn layer_weight_bytes(shape: &EncoderShape, weight_bits: u32) -> u64 {
    encoder_layer_stages(shape, weight_bits)
        .iter()
        .map(|s| s.weight_bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_list_matches_figure_five() {
        let stages = encoder_layer_stages(&EncoderShape::bert_base(), 4);
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "X·Wq",
                "X·Wk",
                "X·Wv",
                "Q·Kᵀ",
                "Softmax",
                "Attn·V",
                "O-proj",
                "Add&LN",
                "FFN1",
                "FFN2",
                "Add&LN (FFN)"
            ]
        );
    }

    #[test]
    fn layer_macs_match_analytic_formula() {
        let shape = EncoderShape::bert_base();
        let expected = 4 * 128 * 768 * 768 + 2 * 128 * 128 * 768 + 2 * 128 * 768 * 3072;
        assert_eq!(layer_macs(&shape), expected as u64);
    }

    #[test]
    fn weight_bytes_match_parameter_count() {
        let shape = EncoderShape::bert_base();
        let params = 4 * 768 * 768 + 2 * 768 * 3072;
        assert_eq!(layer_weight_bytes(&shape, 4), (params / 2) as u64);
        assert_eq!(layer_weight_bytes(&shape, 8), params as u64);
    }

    #[test]
    fn attention_stages_use_wide_operands_and_no_weights() {
        let stages = encoder_layer_stages(&EncoderShape::bert_base(), 4);
        for stage in &stages {
            match stage.name.as_str() {
                "Q·Kᵀ" | "Attn·V" => {
                    assert_eq!(stage.kind, StageKind::MatmulAct8Act8);
                    assert_eq!(stage.weight_bytes, 0);
                }
                "Softmax" => assert_eq!(stage.kind, StageKind::Softmax),
                "Add&LN" | "Add&LN (FFN)" => assert_eq!(stage.kind, StageKind::LayerNorm),
                _ => assert_eq!(stage.kind, StageKind::MatmulAct8Weight4),
            }
        }
    }

    #[test]
    fn mixed_stages_with_uniform_bits_match_the_uniform_path() {
        let shape = EncoderShape::bert_base();
        for bits in [2u32, 4, 8] {
            assert_eq!(
                encoder_layer_stages_mixed(&shape, &LayerBits::uniform(bits)),
                encoder_layer_stages(&shape, bits)
            );
        }
    }

    #[test]
    fn wide_weights_run_in_the_half_rate_mode_and_stream_more_bytes() {
        let shape = EncoderShape::bert_base();
        let mut bits = LayerBits::uniform(4);
        bits.ffn1 = 8;
        bits.q = 2;
        let stages = encoder_layer_stages_mixed(&shape, &bits);
        let by_name = |name: &str| stages.iter().find(|s| s.name == name).unwrap();

        // 8-bit FFN1 weights: nibble-split 8b×8b mode, twice the w4 bytes.
        assert_eq!(by_name("FFN1").kind, StageKind::MatmulAct8Act8);
        assert_eq!(
            by_name("FFN1").weight_bytes,
            (768 * 3072) as u64 // 8 bits per parameter
        );
        // 2-bit Q weights: still native 8b×4b mode, half the w4 bytes.
        assert_eq!(by_name("X·Wq").kind, StageKind::MatmulAct8Weight4);
        assert_eq!(by_name("X·Wq").weight_bytes, (768 * 768 / 4) as u64);
        // Untouched sites keep the w4 profile.
        assert_eq!(by_name("FFN2").kind, StageKind::MatmulAct8Weight4);
        assert_eq!(by_name("FFN2").weight_bytes, (3072 * 768 / 2) as u64);
        // MAC counts never depend on the weight width.
        assert_eq!(by_name("FFN1").macs, (128u64) * 768 * 3072);
    }

    #[test]
    fn ffn_dominates_the_mac_count() {
        let stages = encoder_layer_stages(&EncoderShape::bert_base(), 4);
        let ffn: u64 = stages
            .iter()
            .filter(|s| s.name.starts_with("FFN"))
            .map(|s| s.macs)
            .sum();
        assert!(ffn * 2 > layer_macs(&EncoderShape::bert_base()));
    }
}
