//! Processing Element and Processing Unit (paper §III-B, Fig. 2).
//!
//! A [`ProcessingElement`] wraps one BIM with an accumulator and the
//! requantization step: it computes complete dot products over arbitrarily
//! long vectors, accumulating the BIM's partial sums in int32 and finally
//! pushing the accumulator (plus bias) through the fixed-point requantizer —
//! exactly the PE → Accu → Quant pipeline of Fig. 2. A [`ProcessingUnit`]
//! groups `N` PEs that share the same input vector and produce `N` output
//! elements in parallel (one output column each).
//!
//! Besides being cycle-counted, the datapath is bit-accurate: the
//! workspace-level integration tests check that a matrix–vector product run
//! through a PU equals the integer reference engine of `fqbert-core`.

use crate::bim::Bim;
use crate::config::BimVariant;
use fqbert_quant::Requantizer;

/// Operand bit-width mode of a matrix–vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandMode {
    /// 8-bit activations × 4-bit weights.
    Act8Weight4,
    /// 8-bit activations × 8-bit operands (attention matrices).
    Act8Act8,
}

/// One dot-product Processing Element: a BIM, an accumulator and the output
/// quantization stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessingElement {
    bim: Bim,
    /// Pipeline latency (cycles) of the quantization module; the psum buffer
    /// is double-buffered so this only matters for drain accounting.
    quant_latency: u64,
}

/// Result of one PE dot-product: the requantized output code and the cycles
/// spent in the multiply–accumulate loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeOutput {
    /// Requantized int8 output code.
    pub code: i8,
    /// Raw int32 accumulator value before requantization.
    pub accumulator: i64,
    /// Cycles spent accumulating (excluding the hidden quantization latency).
    pub cycles: u64,
}

impl ProcessingElement {
    /// Creates a PE with `multipliers` 8b×4b multipliers in its BIM.
    pub fn new(multipliers: usize, variant: BimVariant) -> Self {
        Self {
            bim: Bim::new(multipliers, variant),
            quant_latency: 4,
        }
    }

    /// The underlying BIM.
    pub fn bim(&self) -> &Bim {
        &self.bim
    }

    /// Latency of the quantization stage in cycles.
    pub fn quant_latency(&self) -> u64 {
        self.quant_latency
    }

    /// Computes one output element: dot product of `activations` and
    /// `weights`, plus `bias`, requantized with `requant`.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ, or (in debug builds) if a weight
    /// exceeds the 4-bit range in [`OperandMode::Act8Weight4`] mode.
    pub fn dot(
        &self,
        activations: &[i8],
        weights: &[i8],
        bias: i32,
        requant: &Requantizer,
        mode: OperandMode,
    ) -> PeOutput {
        let (sum, cycles) = match mode {
            OperandMode::Act8Weight4 => self.bim.dot_8x4(activations, weights),
            OperandMode::Act8Act8 => self.bim.dot_8x8(activations, weights),
        };
        let accumulator = sum + i64::from(bias);
        let code = requant.apply(accumulator).clamp(-127, 127) as i8;
        PeOutput {
            code,
            accumulator,
            cycles,
        }
    }
}

/// A Processing Unit: `N` PEs sharing the same input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessingUnit {
    pes: Vec<ProcessingElement>,
}

impl ProcessingUnit {
    /// Creates a PU with `n_pes` PEs of `multipliers` multipliers each.
    pub fn new(n_pes: usize, multipliers: usize, variant: BimVariant) -> Self {
        Self {
            pes: (0..n_pes)
                .map(|_| ProcessingElement::new(multipliers, variant))
                .collect(),
        }
    }

    /// Number of PEs in this PU.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Computes a matrix–vector product `W · x` where `weights` holds one row
    /// per output element (row-major `[out][len]`) — the PU processes the
    /// output elements in groups of `N` PEs working in lock step.
    ///
    /// Returns the output codes and the total cycle count (the slowest PE of
    /// each group determines the group's cycles; quantization is overlapped
    /// except for the final drain).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != biases.len()` or any row length differs
    /// from `x.len()`.
    pub fn matvec(
        &self,
        x: &[i8],
        weights: &[Vec<i8>],
        biases: &[i32],
        requant: &Requantizer,
        mode: OperandMode,
    ) -> (Vec<i8>, u64) {
        assert_eq!(
            weights.len(),
            biases.len(),
            "one bias is required per output element"
        );
        let mut out = Vec::with_capacity(weights.len());
        let mut cycles: u64 = 0;
        for group in weights.chunks(self.pes.len()) {
            let mut group_cycles = 0u64;
            for (pe, row) in self.pes.iter().zip(group.iter()) {
                assert_eq!(row.len(), x.len(), "weight row length must match input");
                let result = pe.dot(x, row, biases[out.len()], requant, mode);
                out.push(result.code);
                group_cycles = group_cycles.max(result.cycles);
            }
            cycles += group_cycles;
        }
        // One final quantization drain that cannot be hidden by the
        // double-buffered psum buffer.
        cycles += self.pes.first().map_or(0, |pe| pe.quant_latency());
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bim::exact_dot;

    fn requant_unit() -> Requantizer {
        Requantizer::from_scale(1.0, 8).expect("valid scale")
    }

    #[test]
    fn pe_dot_matches_exact_arithmetic() {
        let pe = ProcessingElement::new(8, BimVariant::TypeA);
        let a: Vec<i8> = (0..64).map(|i| (i % 23 - 11) as i8).collect();
        let w: Vec<i8> = (0..64).map(|i| (i % 15 - 7) as i8).collect();
        let out = pe.dot(&a, &w, 5, &requant_unit(), OperandMode::Act8Weight4);
        assert_eq!(out.accumulator, exact_dot(&a, &w) + 5);
        assert_eq!(out.cycles, 8);
        assert_eq!(i64::from(out.code), out.accumulator.clamp(-127, 127));
    }

    #[test]
    fn pe_8x8_mode_costs_twice_the_cycles() {
        let pe = ProcessingElement::new(16, BimVariant::TypeB);
        let a = vec![3i8; 128];
        let w4 = vec![2i8; 128];
        let w8 = vec![100i8; 128];
        let narrow = pe.dot(&a, &w4, 0, &requant_unit(), OperandMode::Act8Weight4);
        let wide = pe.dot(&a, &w8, 0, &requant_unit(), OperandMode::Act8Act8);
        assert_eq!(narrow.cycles, 8);
        assert_eq!(wide.cycles, 16);
        assert_eq!(wide.accumulator, 128 * 3 * 100);
    }

    #[test]
    fn pu_matvec_matches_scalar_reference() {
        let pu = ProcessingUnit::new(4, 8, BimVariant::TypeA);
        let x: Vec<i8> = (0..32).map(|i| (i as i8) - 16).collect();
        let weights: Vec<Vec<i8>> = (0..10)
            .map(|r| (0..32).map(|c| ((r * 7 + c * 3) % 15 - 7) as i8).collect())
            .collect();
        let biases: Vec<i32> = (0..10).map(|r| r * 3 - 5).collect();
        let requant = Requantizer::from_scale(0.05, 8).unwrap();
        let (codes, cycles) = pu.matvec(&x, &weights, &biases, &requant, OperandMode::Act8Weight4);
        assert_eq!(codes.len(), 10);
        for (r, row) in weights.iter().enumerate() {
            let acc = exact_dot(&x, row) + i64::from(biases[r]);
            let expected = requant.apply(acc).clamp(-127, 127) as i8;
            assert_eq!(codes[r], expected, "output element {r}");
        }
        // 10 outputs over 4 PEs → 3 groups of ceil(32/8)=4 cycles, plus the
        // quantization drain.
        assert_eq!(cycles, 3 * 4 + 4);
    }

    #[test]
    fn pu_cycles_shrink_with_more_pes() {
        let x = vec![1i8; 64];
        let weights: Vec<Vec<i8>> = (0..16).map(|_| vec![1i8; 64]).collect();
        let biases = vec![0i32; 16];
        let requant = requant_unit();
        let small = ProcessingUnit::new(4, 8, BimVariant::TypeA);
        let large = ProcessingUnit::new(16, 8, BimVariant::TypeA);
        let (_, c_small) = small.matvec(&x, &weights, &biases, &requant, OperandMode::Act8Weight4);
        let (_, c_large) = large.matvec(&x, &weights, &biases, &requant, OperandMode::Act8Weight4);
        assert!(c_large < c_small);
    }

    #[test]
    #[should_panic(expected = "one bias is required")]
    fn mismatched_bias_count_panics() {
        let pu = ProcessingUnit::new(2, 4, BimVariant::TypeA);
        let _ = pu.matvec(
            &[1, 2],
            &[vec![1i8, 2]],
            &[],
            &requant_unit(),
            OperandMode::Act8Weight4,
        );
    }
}
