//! Accelerator and FPGA-device configuration.

/// The FPGA devices the paper evaluates on, with their available resources
/// (from Table III's device rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpgaDevice {
    /// Xilinx ZCU102 MPSoC board.
    Zcu102,
    /// Xilinx ZCU111 MPSoC board.
    Zcu111,
}

impl FpgaDevice {
    /// Device name as printed in the experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            FpgaDevice::Zcu102 => "ZCU102",
            FpgaDevice::Zcu111 => "ZCU111",
        }
    }

    /// Available BRAM18K blocks.
    pub fn bram18k(self) -> u64 {
        match self {
            FpgaDevice::Zcu102 => 1824,
            FpgaDevice::Zcu111 => 2160,
        }
    }

    /// Available DSP48E slices.
    pub fn dsp48(self) -> u64 {
        match self {
            FpgaDevice::Zcu102 => 2520,
            FpgaDevice::Zcu111 => 4272,
        }
    }

    /// Available flip-flops.
    pub fn ff(self) -> u64 {
        match self {
            FpgaDevice::Zcu102 => 548_160,
            FpgaDevice::Zcu111 => 850_560,
        }
    }

    /// Available LUTs.
    pub fn lut(self) -> u64 {
        match self {
            FpgaDevice::Zcu102 => 274_080,
            FpgaDevice::Zcu111 => 425_280,
        }
    }

    /// Whether the device has UltraRAM (used by the ZCU111 configuration to
    /// offload some buffers, per the footnote of Table III).
    pub fn has_uram(self) -> bool {
        matches!(self, FpgaDevice::Zcu111)
    }

    /// Effective processing-side DDR bandwidth in bytes per second assumed by
    /// the memory model (PS DDR4 through the AXI HP ports).
    pub fn ddr_bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            FpgaDevice::Zcu102 => 12.0e9,
            FpgaDevice::Zcu111 => 17.0e9,
        }
    }
}

impl std::fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The variant of the Bit-split Inner-product Module (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BimVariant {
    /// Type A: the shift-add sits after the adder tree (cheaper, requires
    /// rearranged input data).
    #[default]
    TypeA,
    /// Type B: every multiplier has its own shift before the adder tree.
    TypeB,
}

/// Full configuration of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Target device.
    pub device: FpgaDevice,
    /// Number of Processing Units (12 in every configuration of Table III).
    pub num_pus: usize,
    /// Number of Processing Elements per PU (the `N` of Table III).
    pub pes_per_pu: usize,
    /// Number of 8b×4b multipliers per BIM (the `M` of Table III).
    pub multipliers_per_bim: usize,
    /// Which BIM variant is instantiated.
    pub bim_variant: BimVariant,
    /// Clock frequency of the programmable-logic part in Hz (214 MHz in the
    /// paper).
    pub frequency_hz: f64,
    /// Weight bit-width streamed from DDR (4 for FQ-BERT).
    pub weight_bits: u32,
    /// Activation bit-width held in the on-chip buffers (8 for FQ-BERT).
    pub activation_bits: u32,
    /// SIMD width of the LN core's pipeline stages.
    pub ln_simd_width: usize,
    /// Number of rows the softmax core processes in parallel.
    pub softmax_lanes: usize,
}

impl AcceleratorConfig {
    /// The ZCU102 configuration with `(N, M) = (8, 16)` — the first row of
    /// Table III.
    pub fn zcu102_n8_m16() -> Self {
        Self {
            device: FpgaDevice::Zcu102,
            num_pus: 12,
            pes_per_pu: 8,
            multipliers_per_bim: 16,
            bim_variant: BimVariant::TypeA,
            frequency_hz: 214.0e6,
            weight_bits: 4,
            activation_bits: 8,
            ln_simd_width: 16,
            softmax_lanes: 8,
        }
    }

    /// The ZCU102 configuration with `(N, M) = (16, 8)` — the second row of
    /// Table III.
    pub fn zcu102_n16_m8() -> Self {
        Self {
            pes_per_pu: 16,
            multipliers_per_bim: 8,
            ..Self::zcu102_n8_m16()
        }
    }

    /// The ZCU111 configuration with `(N, M) = (16, 16)` — the third row of
    /// Table III (double the multipliers of the ZCU102 builds).
    pub fn zcu111_n16_m16() -> Self {
        Self {
            device: FpgaDevice::Zcu111,
            pes_per_pu: 16,
            multipliers_per_bim: 16,
            ..Self::zcu102_n8_m16()
        }
    }

    /// All three published configurations, in Table III order.
    pub fn table_iii_configs() -> Vec<Self> {
        vec![
            Self::zcu102_n8_m16(),
            Self::zcu102_n16_m8(),
            Self::zcu111_n16_m16(),
        ]
    }

    /// Total number of physical 8b×4b multipliers in the PE array.
    pub fn total_multipliers(&self) -> usize {
        self.num_pus * self.pes_per_pu * self.multipliers_per_bim
    }

    /// Peak 8b×4b multiply–accumulate operations per cycle.
    pub fn peak_macs_8x4_per_cycle(&self) -> usize {
        self.total_multipliers()
    }

    /// Peak 8b×8b multiply–accumulate operations per cycle (two 8b×4b
    /// multipliers are fused per product).
    pub fn peak_macs_8x8_per_cycle(&self) -> usize {
        self.total_multipliers() / 2
    }

    /// Validates structural consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_pus == 0 || self.pes_per_pu == 0 || self.multipliers_per_bim == 0 {
            return Err("PU/PE/multiplier counts must be non-zero".to_string());
        }
        if !self.multipliers_per_bim.is_multiple_of(2) {
            return Err(
                "the BIM needs an even number of multipliers to fuse 8b×8b products".to_string(),
            );
        }
        if self.frequency_hz <= 0.0 {
            return Err("frequency must be positive".to_string());
        }
        if !(2..=8).contains(&self.weight_bits) || self.activation_bits != 8 {
            return Err(format!(
                "unsupported bit-widths: weights {} activations {}",
                self.weight_bits, self.activation_bits
            ));
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::zcu102_n8_m16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_configurations_are_valid() {
        for cfg in AcceleratorConfig::table_iii_configs() {
            assert!(cfg.validate().is_ok());
            assert_eq!(cfg.num_pus, 12);
        }
    }

    #[test]
    fn multiplier_counts_match_table_iii() {
        assert_eq!(AcceleratorConfig::zcu102_n8_m16().total_multipliers(), 1536);
        assert_eq!(AcceleratorConfig::zcu102_n16_m8().total_multipliers(), 1536);
        assert_eq!(
            AcceleratorConfig::zcu111_n16_m16().total_multipliers(),
            3072
        );
    }

    #[test]
    fn peak_rates() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        assert_eq!(cfg.peak_macs_8x4_per_cycle(), 1536);
        assert_eq!(cfg.peak_macs_8x8_per_cycle(), 768);
    }

    #[test]
    fn device_resources_match_table_iii_header() {
        assert_eq!(FpgaDevice::Zcu102.dsp48(), 2520);
        assert_eq!(FpgaDevice::Zcu102.bram18k(), 1824);
        assert_eq!(FpgaDevice::Zcu111.dsp48(), 4272);
        assert_eq!(FpgaDevice::Zcu111.lut(), 425_280);
        assert!(FpgaDevice::Zcu111.has_uram());
        assert!(!FpgaDevice::Zcu102.has_uram());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cfg = AcceleratorConfig {
            multipliers_per_bim: 7,
            ..AcceleratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AcceleratorConfig {
            num_pus: 0,
            ..AcceleratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AcceleratorConfig {
            weight_bits: 16,
            ..AcceleratorConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
