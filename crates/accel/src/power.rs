//! Board-level power model (paper Table IV).
//!
//! The paper reports 9.8 W for the ZCU102 build and 13.2 W for the ZCU111
//! build. We model board power as a static component (PS, DDR, regulators,
//! idle PL) plus a dynamic component proportional to the number of active
//! multipliers; the two coefficients are calibrated to those two published
//! points and documented as such.

use crate::config::AcceleratorConfig;

/// Calibrated board power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static (workload-independent) board power in watts.
    pub static_watts: f64,
    /// Dynamic power per active 8b×4b multiplier at 214 MHz, in watts.
    pub watts_per_multiplier: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Calibrated to (1536 multipliers, 9.8 W) and (3072 multipliers,
        // 13.2 W) from Table IV.
        Self {
            static_watts: 6.4,
            watts_per_multiplier: 3.4 / 1536.0,
        }
    }
}

impl PowerModel {
    /// Creates the default calibrated model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated board power of a configuration in watts.
    pub fn board_watts(&self, config: &AcceleratorConfig) -> f64 {
        self.static_watts + self.watts_per_multiplier * config.total_multipliers() as f64
    }

    /// Energy per inference in joules given the inference latency.
    pub fn energy_per_inference_joules(&self, config: &AcceleratorConfig, latency_ms: f64) -> f64 {
        self.board_watts(config) * latency_ms / 1e3
    }

    /// Throughput-per-watt (frames per second per watt), the metric of
    /// Table IV.
    pub fn fps_per_watt(&self, config: &AcceleratorConfig, latency_ms: f64) -> f64 {
        let fps = 1e3 / latency_ms;
        fps / self.board_watts(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points_match_table_iv() {
        let model = PowerModel::new();
        let zcu102 = model.board_watts(&AcceleratorConfig::zcu102_n8_m16());
        let zcu111 = model.board_watts(&AcceleratorConfig::zcu111_n16_m16());
        assert!((zcu102 - 9.8).abs() < 0.05, "ZCU102 power {zcu102}");
        assert!((zcu111 - 13.2).abs() < 0.05, "ZCU111 power {zcu111}");
    }

    #[test]
    fn fps_per_watt_matches_published_headline() {
        let model = PowerModel::new();
        // At the published ZCU111 latency of 23.79 ms the paper reports
        // 3.18 fps/W.
        let fpw = model.fps_per_watt(&AcceleratorConfig::zcu111_n16_m16(), 23.79);
        assert!((fpw - 3.18).abs() < 0.05, "fps/W {fpw}");
        // And 2.32 fps/W for the ZCU102 at 43.89 ms.
        let fpw102 = model.fps_per_watt(&AcceleratorConfig::zcu102_n8_m16(), 43.89);
        assert!((fpw102 - 2.32).abs() < 0.05, "fps/W {fpw102}");
    }

    #[test]
    fn energy_scales_with_latency() {
        let model = PowerModel::new();
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let e1 = model.energy_per_inference_joules(&cfg, 10.0);
        let e2 = model.energy_per_inference_joules(&cfg, 20.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
