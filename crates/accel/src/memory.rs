//! Off-chip memory model and on-chip buffer plan (paper §III-A).
//!
//! Weights live in off-chip DDR and stream in over AXI; the weight buffer is
//! double-buffered so transfers overlap with compute. The on-chip buffers
//! (input/output, weight, parameter, intermediate Q/K/V/attention, psum) are
//! sized from the model shape and mapped to BRAM18K blocks for the resource
//! model.

use crate::config::AcceleratorConfig;

/// Simple bandwidth/latency model of the DDR + AXI path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrModel {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-burst latency in cycles (address setup, AXI handshake).
    pub burst_latency_cycles: u64,
    /// Accelerator clock frequency in Hz (to convert bytes to cycles).
    pub frequency_hz: f64,
}

impl DdrModel {
    /// Builds the DDR model implied by an accelerator configuration.
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        Self {
            bandwidth_bytes_per_sec: config.device.ddr_bandwidth_bytes_per_sec(),
            burst_latency_cycles: 64,
            frequency_hz: config.frequency_hz,
        }
    }

    /// Bytes transferable per accelerator cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_bytes_per_sec / self.frequency_hz
    }

    /// Cycles needed to stream `bytes` bytes in `bursts` bursts.
    pub fn transfer_cycles(&self, bytes: u64, bursts: u64) -> u64 {
        let streaming = (bytes as f64 / self.bytes_per_cycle()).ceil() as u64;
        streaming + bursts * self.burst_latency_cycles
    }

    /// Transfer time in milliseconds.
    pub fn transfer_ms(&self, bytes: u64, bursts: u64) -> f64 {
        self.transfer_cycles(bytes, bursts) as f64 / self.frequency_hz * 1e3
    }
}

/// Capacities of the on-chip buffers in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPlan {
    /// Input/output activation buffer.
    pub io_buffer_bytes: u64,
    /// Weight buffer (double-buffered: the figure is the total of both banks).
    pub weight_buffer_bytes: u64,
    /// Intermediate buffer holding Q, K, V and the attention matrix.
    pub intermediate_buffer_bytes: u64,
    /// Parameter buffer (scale factors, softmax LUT, LN parameters).
    pub parameter_buffer_bytes: u64,
    /// Partial-sum buffer (double-buffered int32 accumulators).
    pub psum_buffer_bytes: u64,
}

impl BufferPlan {
    /// Sizes the buffers for an encoder of the given shape on the given
    /// accelerator configuration.
    ///
    /// `seq_len`, `hidden` and `intermediate` describe the encoder layer; the
    /// weight buffer holds one tile of weights per PE bank (double-buffered).
    pub fn for_shape(
        config: &AcceleratorConfig,
        seq_len: usize,
        hidden: usize,
        intermediate: usize,
    ) -> Self {
        let act_bytes = |elements: usize| (elements * config.activation_bits as usize / 8) as u64;
        let io_buffer_bytes = 2 * act_bytes(seq_len * hidden);
        // One weight tile: every PE holds `hidden` 4-bit weights per bank,
        // two banks for double buffering.
        let pes = (config.num_pus * config.pes_per_pu) as u64;
        let weight_tile = (hidden.max(intermediate) * config.weight_bits as usize / 8) as u64;
        let weight_buffer_bytes = 2 * pes * weight_tile;
        // Q, K, V plus one head's attention matrix.
        let intermediate_buffer_bytes =
            act_bytes(3 * seq_len * hidden) + act_bytes(seq_len * seq_len);
        // Softmax LUT (256 B) + LN parameters + per-tensor scales.
        let parameter_buffer_bytes = 256 + (4 * hidden) as u64 + 4 * 64;
        // Double-buffered int32 partial sums, one per PE.
        let psum_buffer_bytes = 2 * pes * 4;
        Self {
            io_buffer_bytes,
            weight_buffer_bytes,
            intermediate_buffer_bytes,
            parameter_buffer_bytes,
            psum_buffer_bytes,
        }
    }

    /// Total on-chip storage in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.io_buffer_bytes
            + self.weight_buffer_bytes
            + self.intermediate_buffer_bytes
            + self.parameter_buffer_bytes
            + self.psum_buffer_bytes
    }

    /// Number of BRAM18K blocks needed (2 KiB usable per block at the byte
    /// granularity used here, with each logical buffer rounded up separately
    /// because buffers cannot share a block).
    pub fn bram18k_blocks(&self) -> u64 {
        const BRAM_BYTES: u64 = 2 * 1024;
        [
            self.io_buffer_bytes,
            self.weight_buffer_bytes,
            self.intermediate_buffer_bytes,
            self.parameter_buffer_bytes,
            self.psum_buffer_bytes,
        ]
        .iter()
        .map(|&b| b.div_ceil(BRAM_BYTES))
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr_transfer_scales_with_bytes() {
        let ddr = DdrModel {
            bandwidth_bytes_per_sec: 10.0e9,
            burst_latency_cycles: 10,
            frequency_hz: 200.0e6,
        };
        assert_eq!(ddr.bytes_per_cycle(), 50.0);
        let small = ddr.transfer_cycles(1_000, 1);
        let large = ddr.transfer_cycles(10_000, 1);
        assert!(large > 9 * small / 2);
        assert!(ddr.transfer_ms(1_000_000, 1) > 0.0);
    }

    #[test]
    fn ddr_from_config_uses_device_bandwidth() {
        let a = DdrModel::from_config(&AcceleratorConfig::zcu102_n8_m16());
        let b = DdrModel::from_config(&AcceleratorConfig::zcu111_n16_m16());
        assert!(b.bandwidth_bytes_per_sec > a.bandwidth_bytes_per_sec);
    }

    #[test]
    fn buffer_plan_totals_and_bram() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let plan = BufferPlan::for_shape(&cfg, 128, 768, 3072);
        assert_eq!(
            plan.total_bytes(),
            plan.io_buffer_bytes
                + plan.weight_buffer_bytes
                + plan.intermediate_buffer_bytes
                + plan.parameter_buffer_bytes
                + plan.psum_buffer_bytes
        );
        assert!(plan.bram18k_blocks() > 0);
        // The double-buffered weight buffer must dominate an activation-sized
        // buffer for BERT-base shapes.
        assert!(plan.weight_buffer_bytes > plan.psum_buffer_bytes);
    }

    #[test]
    fn larger_sequence_needs_more_intermediate_storage() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let short = BufferPlan::for_shape(&cfg, 64, 768, 3072);
        let long = BufferPlan::for_shape(&cfg, 128, 768, 3072);
        assert!(long.intermediate_buffer_bytes > short.intermediate_buffer_bytes);
        assert!(long.io_buffer_bytes > short.io_buffer_bytes);
    }
}
