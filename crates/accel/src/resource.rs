//! FPGA resource model (paper Table III).
//!
//! The DSP count follows directly from the datapath structure: one DSP48E
//! slice per 8b×4b multiplier, plus the accumulator/requantization DSPs that
//! scale with the number of BIM lanes, plus a fixed allocation for the
//! softmax and LN cores. The FF/LUT/BRAM models are linear in the array
//! dimensions with coefficients calibrated against the three published
//! configurations, so the *scaling* across `(N, M)` choices is reproduced
//! (see DESIGN.md for the substitution argument).

use crate::config::{AcceleratorConfig, FpgaDevice};

/// Estimated FPGA resource usage of one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// BRAM18K blocks.
    pub bram18k: u64,
    /// UltraRAM blocks (only used on devices that have them).
    pub uram: u64,
    /// DSP48E slices.
    pub dsp48: u64,
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
}

impl ResourceEstimate {
    /// Whether the estimate fits on the given device.
    pub fn fits(&self, device: FpgaDevice) -> bool {
        self.bram18k <= device.bram18k()
            && self.dsp48 <= device.dsp48()
            && self.ff <= device.ff()
            && self.lut <= device.lut()
    }

    /// DSP utilisation as a fraction of the device's DSP slices.
    pub fn dsp_utilisation(&self, device: FpgaDevice) -> f64 {
        self.dsp48 as f64 / device.dsp48() as f64
    }
}

/// The resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceModel;

impl ResourceModel {
    /// Creates the resource model.
    pub fn new() -> Self {
        Self
    }

    /// Estimates the resources of an accelerator configuration.
    pub fn estimate(&self, config: &AcceleratorConfig) -> ResourceEstimate {
        let mults = config.total_multipliers() as u64;
        let pes = (config.num_pus * config.pes_per_pu) as u64;
        let pu_lanes = (config.num_pus * config.multipliers_per_bim) as u64;

        // One DSP per physical 8b×4b multiplier, ~5/6 of a DSP per BIM lane
        // for the shift-add / accumulate path, plus a fixed block for the
        // softmax core, LN core and requantization units.
        let dsp48 = mults + (5 * pu_lanes).div_ceil(6) + 55;

        // FF/LUT: per-multiplier pipeline registers and product terms,
        // per-PE accumulator/quantizer state, and a fixed controller /
        // softmax / LN / AXI allocation (coefficients calibrated to
        // Table III).
        let ff = (32.85 * mults as f64 + 276.8 * pes as f64 + 47_402.0).round() as u64;
        let lut = (23.13 * mults as f64 + 323.3 * pes as f64 + 56_590.0).round() as u64;

        // BRAM: a weight bank pair per PE plus the shared activation /
        // intermediate / parameter buffers (coefficients calibrated to the
        // ZCU102 rows of Table III). On devices with UltraRAM the large
        // activation buffers are moved there, as the ZCU111 row's footnote
        // describes.
        let bram_full = (0.40625 * pes as f64 + 799.0).round() as u64;
        let (bram18k, uram) = if config.device.has_uram() {
            (bram_full.saturating_sub(198), 24)
        } else {
            (bram_full, 0)
        };

        ResourceEstimate {
            bram18k,
            uram,
            dsp48,
            ff,
            lut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_matches_table_iii_exactly() {
        let model = ResourceModel::new();
        assert_eq!(
            model.estimate(&AcceleratorConfig::zcu102_n8_m16()).dsp48,
            1751
        );
        assert_eq!(
            model.estimate(&AcceleratorConfig::zcu102_n16_m8()).dsp48,
            1671
        );
        assert_eq!(
            model.estimate(&AcceleratorConfig::zcu111_n16_m16()).dsp48,
            3287
        );
    }

    #[test]
    fn ff_and_lut_match_table_iii_within_two_percent() {
        let model = ResourceModel::new();
        let published = [
            (AcceleratorConfig::zcu102_n8_m16(), 124_433u64, 123_157u64),
            (AcceleratorConfig::zcu102_n16_m8(), 151_010, 154_192),
            (AcceleratorConfig::zcu111_n16_m16(), 201_469, 189_724),
        ];
        for (cfg, ff_ref, lut_ref) in published {
            let est = model.estimate(&cfg);
            let ff_err = (est.ff as f64 - ff_ref as f64).abs() / ff_ref as f64;
            let lut_err = (est.lut as f64 - lut_ref as f64).abs() / lut_ref as f64;
            assert!(ff_err < 0.02, "FF error {ff_err} for {cfg:?}");
            assert!(lut_err < 0.02, "LUT error {lut_err} for {cfg:?}");
        }
    }

    #[test]
    fn bram_matches_table_iii_within_five_percent() {
        let model = ResourceModel::new();
        let published = [
            (AcceleratorConfig::zcu102_n8_m16(), 838u64),
            (AcceleratorConfig::zcu102_n16_m8(), 877),
            (AcceleratorConfig::zcu111_n16_m16(), 679),
        ];
        for (cfg, bram_ref) in published {
            let est = model.estimate(&cfg);
            let err = (est.bram18k as f64 - bram_ref as f64).abs() / bram_ref as f64;
            assert!(err < 0.05, "BRAM error {err} for {cfg:?}");
        }
    }

    #[test]
    fn every_published_configuration_fits_its_device() {
        let model = ResourceModel::new();
        for cfg in AcceleratorConfig::table_iii_configs() {
            let est = model.estimate(&cfg);
            assert!(
                est.fits(cfg.device),
                "{cfg:?} does not fit {:?}",
                cfg.device
            );
            // DSP utilisation is reported as "very high" in the paper.
            assert!(est.dsp_utilisation(cfg.device) > 0.6);
        }
    }

    #[test]
    fn oversized_configuration_does_not_fit() {
        let model = ResourceModel::new();
        let mut cfg = AcceleratorConfig::zcu102_n8_m16();
        cfg.pes_per_pu = 64;
        let est = model.estimate(&cfg);
        assert!(!est.fits(FpgaDevice::Zcu102));
    }

    #[test]
    fn uram_only_on_zcu111() {
        let model = ResourceModel::new();
        assert_eq!(model.estimate(&AcceleratorConfig::zcu102_n8_m16()).uram, 0);
        assert!(model.estimate(&AcceleratorConfig::zcu111_n16_m16()).uram > 0);
    }
}
