//! The Softmax core and the Layer-Norm core (paper §III-B).
//!
//! Both cores wrap the functional, integer-only implementations from
//! `fqbert-quant` ([`SoftmaxLut`] and [`QuantizedLayerNorm`]) and add the
//! cycle accounting of the hardware units:
//!
//! * the **Softmax core** streams one score row at a time: a max reduction,
//!   one table lookup + accumulate per element, then one divide per element,
//!   processed `lanes` elements per cycle;
//! * the **LN core** is the coarse-grained 3-stage SIMD pipeline described in
//!   the paper (consume two scaled vectors and produce the mean; subtract the
//!   mean and produce the variance; apply the element-wise scale/shift),
//!   processing `simd_width` elements per cycle per stage.

use fqbert_quant::{QuantError, QuantizedLayerNorm, SoftmaxLut};

/// The accelerator's softmax unit: LUT-based exponentials with
/// max-subtraction, `lanes` elements processed per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxCore {
    lut: SoftmaxLut,
    lanes: usize,
}

impl SoftmaxCore {
    /// Creates a softmax core for scores quantized at `input_scale` levels
    /// per unit, with `lanes` parallel lanes.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid scales or zero lanes.
    pub fn new(input_scale: f32, out_levels: u32, lanes: usize) -> Result<Self, QuantError> {
        if lanes == 0 {
            return Err(QuantError::InvalidArgument(
                "softmax core needs at least one lane".to_string(),
            ));
        }
        Ok(Self {
            lut: SoftmaxLut::new(input_scale, out_levels)?,
            lanes,
        })
    }

    /// The underlying lookup table (loaded into the parameter buffer at
    /// initialisation time, per §III-A).
    pub fn lut(&self) -> &SoftmaxLut {
        &self.lut
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Applies softmax to one row of quantized scores, returning the
    /// quantized probabilities and the cycles consumed.
    pub fn apply_row(&self, scores: &[i32]) -> (Vec<i32>, u64) {
        let out = self.lut.apply_row(scores);
        (out, self.row_cycles(scores.len()))
    }

    /// Cycle cost of one row of `len` elements: max reduction, exp-lookup +
    /// accumulate, and normalise, each streamed over the lanes.
    pub fn row_cycles(&self, len: usize) -> u64 {
        let passes = 3u64; // max, exp+sum, divide
        passes * (len as u64).div_ceil(self.lanes as u64)
    }

    /// Cycle cost of the full attention-probability computation for one
    /// encoder layer: `heads · seq` rows of length `seq`.
    pub fn attention_cycles(&self, heads: usize, seq_len: usize) -> u64 {
        (heads as u64) * (seq_len as u64) * self.row_cycles(seq_len)
    }
}

/// The accelerator's layer-normalization unit: a 3-stage SIMD pipeline over
/// fixed-point values.
#[derive(Debug, Clone, PartialEq)]
pub struct LnCore {
    ln: QuantizedLayerNorm,
    simd_width: usize,
}

impl LnCore {
    /// Creates an LN core for the given quantized parameters and SIMD width.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero SIMD width.
    pub fn new(ln: QuantizedLayerNorm, simd_width: usize) -> Result<Self, QuantError> {
        if simd_width == 0 {
            return Err(QuantError::InvalidArgument(
                "LN core needs a positive SIMD width".to_string(),
            ));
        }
        Ok(Self { ln, simd_width })
    }

    /// The functional layer-norm unit.
    pub fn layer_norm(&self) -> &QuantizedLayerNorm {
        &self.ln
    }

    /// SIMD width of each pipeline stage.
    pub fn simd_width(&self) -> usize {
        self.simd_width
    }

    /// Runs the `Add & LN` operation on two quantized rows, returning the
    /// output codes and the cycles consumed.
    ///
    /// # Errors
    ///
    /// Propagates errors from the functional layer norm.
    pub fn apply_residual(
        &self,
        a: &[i8],
        scale_a: f32,
        b: &[i8],
        scale_b: f32,
        out_scale: f32,
    ) -> Result<(Vec<i8>, u64), QuantError> {
        let out = self.ln.apply_residual(a, scale_a, b, scale_b, out_scale)?;
        Ok((out, self.row_cycles(a.len())))
    }

    /// Cycle cost of normalising one row of `hidden` elements: three pipeline
    /// stages, each streaming `simd_width` elements per cycle, plus the
    /// pipeline fill.
    pub fn row_cycles(&self, hidden: usize) -> u64 {
        let per_stage = (hidden as u64).div_ceil(self.simd_width as u64);
        3 * per_stage + 2
    }

    /// Cycle cost of the two `Add & LN` blocks of one encoder layer
    /// (`2 · seq` rows).
    pub fn layer_cycles(&self, seq_len: usize, hidden: usize) -> u64 {
        2 * (seq_len as u64) * self.row_cycles(hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ln_core(hidden: usize, simd: usize) -> LnCore {
        let ln = QuantizedLayerNorm::from_float(&vec![1.0; hidden], &vec![0.0; hidden], 1e-5)
            .expect("valid parameters");
        LnCore::new(ln, simd).expect("valid core")
    }

    #[test]
    fn softmax_core_matches_functional_lut() {
        let core = SoftmaxCore::new(4.0, 127, 8).unwrap();
        let scores = [12, 3, -5, 0, 7, 2, -1, 9, 4, -3];
        let (probs, cycles) = core.apply_row(&scores);
        assert_eq!(probs, core.lut().apply_row(&scores));
        assert_eq!(cycles, 3 * 2); // 10 elements over 8 lanes = 2 per pass
    }

    #[test]
    fn softmax_attention_cycles_scale_quadratically() {
        let core = SoftmaxCore::new(4.0, 127, 8).unwrap();
        let short = core.attention_cycles(12, 64);
        let long = core.attention_cycles(12, 128);
        assert!(long > 3 * short && long < 5 * short);
    }

    #[test]
    fn softmax_rejects_zero_lanes() {
        assert!(SoftmaxCore::new(4.0, 127, 0).is_err());
    }

    #[test]
    fn ln_core_matches_functional_layer_norm() {
        let core = ln_core(32, 16);
        let a: Vec<i8> = (0..32).map(|i| (i * 3 - 48) as i8).collect();
        let b: Vec<i8> = (0..32).map(|i| (40 - i * 2) as i8).collect();
        let (out, cycles) = core.apply_residual(&a, 32.0, &b, 16.0, 24.0).unwrap();
        let reference = core
            .layer_norm()
            .apply_residual(&a, 32.0, &b, 16.0, 24.0)
            .unwrap();
        assert_eq!(out, reference);
        assert_eq!(cycles, 3 * 2 + 2);
    }

    #[test]
    fn ln_layer_cycles_count_both_add_ln_blocks() {
        let core = ln_core(64, 16);
        assert_eq!(core.layer_cycles(10, 64), 2 * 10 * core.row_cycles(64));
    }

    #[test]
    fn ln_rejects_zero_simd_width() {
        let ln = QuantizedLayerNorm::from_float(&[1.0, 1.0], &[0.0, 0.0], 1e-5).unwrap();
        assert!(LnCore::new(ln, 0).is_err());
    }
}
