//! The Bit-split Inner-product Module (BIM) — paper §III-B and Fig. 4.
//!
//! Each BIM contains `M = 2m` physical 8-bit × 4-bit multipliers, two
//! m-input adder trees and shift-add logic, and supports two operating modes
//! that are selected at run time:
//!
//! * **8b×4b** (activations × 4-bit weights, the `X·W` projections and FFN
//!   matrices): all `M` multipliers produce independent products, giving `M`
//!   MACs per cycle.
//! * **8b×8b** (activations × 8-bit operands, the `Q·Kᵀ` and `Attn·V`
//!   products): every 8-bit operand is split into a signed high nibble and an
//!   unsigned low nibble, each handled by one multiplier; the two partial
//!   products are recombined with a left shift by 4, giving `M/2` MACs per
//!   cycle.
//!
//! The shift can be placed **after the adder tree** (Type A — a single shifter
//! per BIM, but the operands must be rearranged so all high-nibble products
//! land in one tree) or **per multiplier** (Type B — `m` shifters and wider
//! adders). Both produce bit-identical results; Type A is cheaper, which is
//! exactly the trade-off Fig. 4 illustrates.

use crate::config::BimVariant;

/// Re-export of the BIM variant selector.
pub type BimType = BimVariant;

/// Resource cost of one BIM instance (used by Fig. 4 and the resource model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BimResources {
    /// Number of 8b×4b multipliers.
    pub multipliers: usize,
    /// Number of two-input adders across the adder trees.
    pub adders: usize,
    /// Number of 4-bit left shifters.
    pub shifters: usize,
    /// Total adder bit-width (a proxy for LUT cost: Type B shifts before
    /// adding, so its adders are 4 bits wider).
    pub adder_bits: usize,
}

/// A bit-accurate model of one BIM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bim {
    m_total: usize,
    variant: BimVariant,
}

impl Bim {
    /// Creates a BIM with `m_total` 8b×4b multipliers of the given variant.
    ///
    /// # Panics
    ///
    /// Panics if `m_total` is zero or odd (8b×8b fusion needs multiplier
    /// pairs).
    pub fn new(m_total: usize, variant: BimVariant) -> Self {
        assert!(
            m_total > 0 && m_total.is_multiple_of(2),
            "BIM needs a positive, even multiplier count, got {m_total}"
        );
        Self { m_total, variant }
    }

    /// Number of physical 8b×4b multipliers.
    pub fn multipliers(&self) -> usize {
        self.m_total
    }

    /// The structural variant (Type A or Type B).
    pub fn variant(&self) -> BimVariant {
        self.variant
    }

    /// One signed 8-bit × signed 4-bit product (the primitive DSP operation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `weight` is outside the signed 4-bit range.
    pub fn multiply_8x4(activation: i8, weight: i8) -> i32 {
        debug_assert!(
            (-8..=7).contains(&weight),
            "4-bit weight {weight} out of range"
        );
        i32::from(activation) * i32::from(weight)
    }

    /// Splits a signed 8-bit operand into `(high_nibble_signed, low_nibble_unsigned)`
    /// such that `value = high * 16 + low`.
    pub fn split_nibbles(value: i8) -> (i8, u8) {
        let low = (value as u8) & 0x0F;
        let high = value as i32 - i32::from(low);
        ((high >> 4) as i8, low)
    }

    /// Dot product in 8b×4b mode. Returns the signed partial sum and the
    /// number of cycles consumed (`ceil(len / M)`).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or a weight exceeds the
    /// 4-bit range (debug builds).
    pub fn dot_8x4(&self, activations: &[i8], weights: &[i8]) -> (i64, u64) {
        assert_eq!(
            activations.len(),
            weights.len(),
            "operand vectors must have equal length"
        );
        let mut sum: i64 = 0;
        let mut cycles: u64 = 0;
        for (a_chunk, w_chunk) in activations
            .chunks(self.m_total)
            .zip(weights.chunks(self.m_total))
        {
            // One cycle: M parallel multipliers feeding the two adder trees.
            let mut tree_lo: i64 = 0;
            let mut tree_hi: i64 = 0;
            for (i, (&a, &w)) in a_chunk.iter().zip(w_chunk.iter()).enumerate() {
                let p = i64::from(Self::multiply_8x4(a, w));
                if i % 2 == 0 {
                    tree_lo += p;
                } else {
                    tree_hi += p;
                }
            }
            sum += tree_lo + tree_hi;
            cycles += 1;
        }
        (sum, cycles)
    }

    /// Dot product in 8b×8b mode (both operands signed 8-bit). Returns the
    /// signed partial sum and the number of cycles (`ceil(len / (M/2))`).
    ///
    /// The arithmetic follows the selected variant exactly; both variants are
    /// proven equal to the exact product by the property tests.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_8x8(&self, activations: &[i8], operands: &[i8]) -> (i64, u64) {
        assert_eq!(
            activations.len(),
            operands.len(),
            "operand vectors must have equal length"
        );
        let pairs_per_cycle = self.m_total / 2;
        let mut sum: i64 = 0;
        let mut cycles: u64 = 0;
        for (a_chunk, w_chunk) in activations
            .chunks(pairs_per_cycle)
            .zip(operands.chunks(pairs_per_cycle))
        {
            match self.variant {
                BimVariant::TypeA => {
                    // Operands are rearranged so every low-nibble product goes
                    // to one tree and every high-nibble product to the other;
                    // a single shift is applied to the high tree's output.
                    let mut tree_low: i64 = 0;
                    let mut tree_high: i64 = 0;
                    for (&a, &w) in a_chunk.iter().zip(w_chunk.iter()) {
                        let (hi, lo) = Self::split_nibbles(w);
                        // Low-nibble multiplier runs unsigned (sign signal 0).
                        tree_low += i64::from(i32::from(a) * i32::from(lo));
                        tree_high += i64::from(Self::multiply_8x4(a, hi));
                    }
                    sum += (tree_high << 4) + tree_low;
                }
                BimVariant::TypeB => {
                    // Each high-nibble product is shifted before entering the
                    // shared adder tree.
                    let mut tree: i64 = 0;
                    for (&a, &w) in a_chunk.iter().zip(w_chunk.iter()) {
                        let (hi, lo) = Self::split_nibbles(w);
                        let p_lo = i64::from(i32::from(a) * i32::from(lo));
                        let p_hi = i64::from(Self::multiply_8x4(a, hi)) << 4;
                        tree += p_hi + p_lo;
                    }
                    sum += tree;
                }
            }
            cycles += 1;
        }
        (sum, cycles)
    }

    /// Structural resource cost of this BIM instance.
    pub fn resources(&self) -> BimResources {
        let m = self.m_total / 2;
        match self.variant {
            BimVariant::TypeA => BimResources {
                multipliers: self.m_total,
                // Two m-input adder trees plus the final combining adder.
                adders: 2 * m.saturating_sub(1) + 1,
                shifters: 1,
                // Tree adders stay at the 12-bit product width; only the
                // final adder is widened by the shift.
                adder_bits: 2 * m.saturating_sub(1) * 16 + 20,
            },
            BimVariant::TypeB => BimResources {
                multipliers: self.m_total,
                adders: 2 * m.saturating_sub(1) + 1,
                shifters: m,
                // Every adder after the per-multiplier shift is 4 bits wider.
                adder_bits: (2 * m.saturating_sub(1) + 1) * 20,
            },
        }
    }

    /// Peak MACs per cycle in 8b×4b mode.
    pub fn peak_macs_8x4(&self) -> usize {
        self.m_total
    }

    /// Peak MACs per cycle in 8b×8b mode.
    pub fn peak_macs_8x8(&self) -> usize {
        self.m_total / 2
    }
}

/// Exact signed dot product used as the reference in tests.
pub fn exact_dot(a: &[i8], b: &[i8]) -> i64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| i64::from(x) * i64::from(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_split_recomposes() {
        for v in i8::MIN..=i8::MAX {
            let (hi, lo) = Bim::split_nibbles(v);
            assert!((-8..=7).contains(&hi), "high nibble {hi} out of range");
            assert!(lo <= 15);
            assert_eq!(i32::from(hi) * 16 + i32::from(lo), i32::from(v));
        }
    }

    #[test]
    fn dot_8x4_matches_exact_product() {
        let bim = Bim::new(16, BimVariant::TypeA);
        let a: Vec<i8> = (0..100).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let w: Vec<i8> = (0..100).map(|i| ((i * 13) % 15 - 7) as i8).collect();
        let (sum, cycles) = bim.dot_8x4(&a, &w);
        assert_eq!(sum, exact_dot(&a, &w));
        assert_eq!(cycles, 100u64.div_ceil(16));
    }

    #[test]
    fn dot_8x8_both_variants_match_exact_product() {
        let a: Vec<i8> = (0..77).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        let w: Vec<i8> = (0..77).map(|i| ((i * 53) % 255 - 127) as i8).collect();
        for variant in [BimVariant::TypeA, BimVariant::TypeB] {
            let bim = Bim::new(8, variant);
            let (sum, cycles) = bim.dot_8x8(&a, &w);
            assert_eq!(sum, exact_dot(&a, &w), "variant {variant:?}");
            assert_eq!(cycles, 77u64.div_ceil(4));
        }
    }

    #[test]
    fn cycle_counts_scale_with_multipliers() {
        let a = vec![1i8; 256];
        let w = vec![1i8; 256];
        let small = Bim::new(8, BimVariant::TypeA);
        let large = Bim::new(32, BimVariant::TypeA);
        assert_eq!(small.dot_8x4(&a, &w).1, 32);
        assert_eq!(large.dot_8x4(&a, &w).1, 8);
        assert_eq!(small.dot_8x8(&a, &w).1, 64);
        assert_eq!(large.dot_8x8(&a, &w).1, 16);
    }

    #[test]
    fn type_a_uses_fewer_shifters_than_type_b() {
        let a = Bim::new(16, BimVariant::TypeA).resources();
        let b = Bim::new(16, BimVariant::TypeB).resources();
        assert_eq!(a.multipliers, b.multipliers);
        assert_eq!(a.adders, b.adders);
        assert!(a.shifters < b.shifters, "Type A must need fewer shifters");
        assert!(a.adder_bits < b.adder_bits, "Type A adders are narrower");
    }

    #[test]
    fn peak_rates() {
        let bim = Bim::new(16, BimVariant::TypeA);
        assert_eq!(bim.peak_macs_8x4(), 16);
        assert_eq!(bim.peak_macs_8x8(), 8);
    }

    #[test]
    #[should_panic(expected = "even multiplier count")]
    fn odd_multiplier_count_panics() {
        let _ = Bim::new(3, BimVariant::TypeA);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let bim = Bim::new(4, BimVariant::TypeA);
        let _ = bim.dot_8x4(&[1, 2], &[1]);
    }
}
