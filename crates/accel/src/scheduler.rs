//! Stage scheduling with double-buffered weight streaming (paper §III-C).
//!
//! The controller divides each stage into sub-stages and prefetches the
//! weights of the next sub-stage while the current one computes, so off-chip
//! transfer is (ideally) completely overlapped by compute. The softmax and
//! layer-norm cores are separate hardware units and run concurrently with the
//! PE array, so they only appear on the critical path if they are slower than
//! the matrix-multiply work they overlap with.
//!
//! [`Scheduler::schedule_layer`] produces the [`ScheduleTrace`] that
//! regenerates Fig. 5: per-stage load/compute windows and the resulting
//! critical path.

use crate::config::AcceleratorConfig;
use crate::dataflow::{encoder_layer_stages_mixed, EncoderShape, EncoderStage, StageKind};
use crate::memory::DdrModel;
use fqbert_quant::LayerBits;

/// Per-stage timing produced by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (matches Fig. 5 labels).
    pub name: String,
    /// Which unit executes the stage.
    pub kind: StageKind,
    /// Cycles spent streaming this stage's weights (0 if none).
    pub load_cycles: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Cycle at which the weight load starts.
    pub load_start: u64,
    /// Cycle at which compute starts.
    pub compute_start: u64,
    /// Cycle at which compute finishes.
    pub compute_end: u64,
}

/// The schedule of one encoder layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTrace {
    /// Per-stage timings in dataflow order.
    pub stages: Vec<StageTiming>,
    /// Critical-path cycles of the layer.
    pub total_cycles: u64,
    /// Cycles during which the PE array is busy.
    pub pe_busy_cycles: u64,
    /// Cycles spent by the softmax core (overlapped with the PE array).
    pub softmax_cycles: u64,
    /// Cycles spent by the LN core (overlapped with the PE array).
    pub ln_cycles: u64,
    /// Total DMA cycles for weight streaming.
    pub dma_cycles: u64,
    /// Cycles the PE array stalls waiting for weights (non-overlapped DMA).
    pub dma_stall_cycles: u64,
    /// Cycles until the PE array finishes its last matrix stage (the
    /// steady-state per-layer period when layers are pipelined back to back).
    pub pe_critical_cycles: u64,
}

impl ScheduleTrace {
    /// Fraction of the critical path during which the PE array is busy.
    pub fn pe_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.pe_busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Renders the trace as a textual Gantt chart (one row per stage), the
    /// form in which Fig. 5 is reproduced by the experiment binary.
    pub fn render_gantt(&self, columns: usize) -> String {
        let total = self.total_cycles.max(1) as f64;
        let mut out = String::new();
        for stage in &self.stages {
            let start = ((stage.compute_start as f64 / total) * columns as f64) as usize;
            let end = (((stage.compute_end as f64) / total) * columns as f64).ceil() as usize;
            let end = end.clamp(start + 1, columns);
            let mut row = vec![' '; columns];
            for cell in row.iter_mut().take(end).skip(start) {
                *cell = match stage.kind {
                    StageKind::MatmulAct8Weight4 => '#',
                    StageKind::MatmulAct8Act8 => '=',
                    StageKind::Softmax => 's',
                    StageKind::LayerNorm => 'n',
                };
            }
            out.push_str(&format!(
                "{:<14} |{}| {:>9} cycles\n",
                stage.name,
                row.iter().collect::<String>(),
                stage.compute_cycles
            ));
        }
        out
    }
}

/// The stage scheduler: maps dataflow stages to cycles on the PE array, the
/// softmax core, the LN core and the DMA engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduler {
    config: AcceleratorConfig,
    ddr: DdrModel,
    /// Effective fraction of peak PE throughput achieved on large matrix
    /// stages (covers tiling imbalance, pipeline fill/drain and control
    /// overhead; calibrated against Table III — see `array_efficiency`).
    efficiency: f64,
}

impl Scheduler {
    /// Creates a scheduler for an accelerator configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        let ddr = DdrModel::from_config(&config);
        let efficiency = array_efficiency(&config);
        Self {
            config,
            ddr,
            efficiency,
        }
    }

    /// The effective PE-array efficiency used by this scheduler.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Cycles the PE array needs for one matrix-multiply stage.
    pub fn matmul_cycles(&self, stage: &EncoderStage) -> u64 {
        let peak = match stage.kind {
            StageKind::MatmulAct8Weight4 => self.config.peak_macs_8x4_per_cycle(),
            StageKind::MatmulAct8Act8 => self.config.peak_macs_8x8_per_cycle(),
            _ => return 0,
        } as f64;
        ((stage.macs as f64) / (peak * self.efficiency)).ceil() as u64
    }

    /// Cycles of the softmax core for one stage.
    fn softmax_cycles(&self, stage: &EncoderStage) -> u64 {
        // Three streaming passes (max, exp+sum, normalise) over every element.
        3 * stage
            .output_elements
            .div_ceil(self.config.softmax_lanes as u64)
    }

    /// Cycles of the LN core for one stage.
    fn ln_cycles(&self, stage: &EncoderStage) -> u64 {
        3 * stage
            .output_elements
            .div_ceil(self.config.ln_simd_width as u64)
            + 2
    }

    /// Schedules one encoder layer and returns the trace.
    ///
    /// The schedule models the steady state of the layer pipeline: the first
    /// weight tile of the layer is assumed to have been prefetched while the
    /// previous layer's FFN stages (which need no further weights) were
    /// computing — exactly the cross-stage prefetch the paper's task-level
    /// scheduling performs. Softmax and LN results stream to their consumers
    /// row by row, so the downstream matrix stage starts after a short
    /// pipeline latency rather than after the full vector completes.
    pub fn schedule_layer(&self, shape: &EncoderShape) -> ScheduleTrace {
        self.schedule_layer_mixed(shape, &LayerBits::uniform(self.config.weight_bits))
    }

    /// Schedules one encoder layer whose six weighted sites carry their own
    /// weight bit-widths (see
    /// [`crate::dataflow::encoder_layer_stages_mixed`]). With uniform `bits`
    /// this is exactly [`Scheduler::schedule_layer`] at that width.
    pub fn schedule_layer_mixed(&self, shape: &EncoderShape, bits: &LayerBits) -> ScheduleTrace {
        let stages = encoder_layer_stages_mixed(shape, bits);
        let mut timings = Vec::with_capacity(stages.len());
        let mut pe_free: u64 = 0;
        let mut load_free: u64 = 0;
        let mut producer_end: u64 = 0;
        let mut pe_busy = 0u64;
        let mut softmax_total = 0u64;
        let mut ln_total = 0u64;
        let mut dma_total = 0u64;
        let mut dma_stall = 0u64;
        let mut critical_end = 0u64;
        let mut first_load = true;

        for stage in &stages {
            match stage.kind {
                StageKind::MatmulAct8Weight4 | StageKind::MatmulAct8Act8 => {
                    let compute = self.matmul_cycles(stage);
                    let load = if stage.weight_bytes > 0 {
                        let bursts = stage.weight_bytes.div_ceil(4096);
                        self.ddr.transfer_cycles(stage.weight_bytes, bursts)
                    } else {
                        0
                    };
                    // Weights are prefetched as early as the DMA engine is
                    // free (double buffering); compute waits for both the PE
                    // array and the weights. The very first tile of the layer
                    // was prefetched during the previous layer (steady state).
                    let load_start = load_free;
                    let load_end = load_start + load;
                    load_free = load_end;
                    dma_total += load;
                    let load_ready = if load > 0 && first_load {
                        first_load = false;
                        0
                    } else {
                        load_end
                    };
                    let compute_start = pe_free.max(load_ready).max(producer_end);
                    dma_stall += compute_start.saturating_sub(pe_free.max(producer_end));
                    let compute_end = compute_start + compute;
                    pe_free = compute_end;
                    pe_busy += compute;
                    producer_end = compute_end;
                    critical_end = critical_end.max(compute_end);
                    timings.push(StageTiming {
                        name: stage.name.clone(),
                        kind: stage.kind,
                        load_cycles: load,
                        compute_cycles: compute,
                        load_start,
                        compute_start,
                        compute_end,
                    });
                }
                StageKind::Softmax | StageKind::LayerNorm => {
                    // Separate hardware unit: starts when its producer is done
                    // and overlaps with the PE array working on the next
                    // stage; its rows stream to the consumer, which therefore
                    // only waits for a fraction of the unit's total work.
                    let compute = match stage.kind {
                        StageKind::Softmax => self.softmax_cycles(stage),
                        _ => self.ln_cycles(stage),
                    };
                    let compute_start = producer_end;
                    let compute_end = compute_start + compute;
                    match stage.kind {
                        StageKind::Softmax => softmax_total += compute,
                        _ => ln_total += compute,
                    }
                    producer_end = compute_start + compute / 8;
                    critical_end = critical_end.max(compute_end);
                    timings.push(StageTiming {
                        name: stage.name.clone(),
                        kind: stage.kind,
                        load_cycles: 0,
                        compute_cycles: compute,
                        load_start: compute_start,
                        compute_start,
                        compute_end,
                    });
                }
            }
        }

        ScheduleTrace {
            stages: timings,
            total_cycles: critical_end,
            pe_busy_cycles: pe_busy,
            softmax_cycles: softmax_total,
            ln_cycles: ln_total,
            dma_cycles: dma_total,
            dma_stall_cycles: dma_stall,
            pe_critical_cycles: pe_free,
        }
    }
}

/// Effective PE-array efficiency for a configuration.
///
/// The constants are calibrated against the three published latency points of
/// Table III (43.89 ms, 45.35 ms, 23.79 ms): efficiency falls slightly with
/// the total multiplier count (harder to keep a larger array fed) and with
/// the number of PEs per PU (more outputs contend for the psum/quant path).
pub fn array_efficiency(config: &AcceleratorConfig) -> f64 {
    let mults = config.total_multipliers() as f64;
    let n = config.pes_per_pu as f64;
    (0.856 - 2.34375e-5 * mults - 0.003125 * n).clamp(0.30, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_matches_calibration_points() {
        let e1 = array_efficiency(&AcceleratorConfig::zcu102_n8_m16());
        let e2 = array_efficiency(&AcceleratorConfig::zcu102_n16_m8());
        let e3 = array_efficiency(&AcceleratorConfig::zcu111_n16_m16());
        assert!((e1 - 0.795).abs() < 1e-3);
        assert!((e2 - 0.770).abs() < 1e-3);
        assert!((e3 - 0.734).abs() < 1e-3);
        assert!(e1 > e2 && e2 > e3);
    }

    #[test]
    fn layer_schedule_is_pe_bound_for_bert_base() {
        let scheduler = Scheduler::new(AcceleratorConfig::zcu102_n8_m16());
        let trace = scheduler.schedule_layer(&EncoderShape::bert_base());
        // Weight streaming must be fully hidden behind compute.
        assert_eq!(trace.dma_stall_cycles, 0, "DMA should be overlapped");
        assert!(trace.pe_utilization() > 0.9);
        assert!(trace.softmax_cycles < trace.pe_busy_cycles / 5);
        assert!(trace.total_cycles > 700_000 && trace.total_cycles < 900_000);
    }

    #[test]
    fn doubling_the_array_roughly_halves_the_layer_cycles() {
        let small = Scheduler::new(AcceleratorConfig::zcu102_n8_m16())
            .schedule_layer(&EncoderShape::bert_base());
        let large = Scheduler::new(AcceleratorConfig::zcu111_n16_m16())
            .schedule_layer(&EncoderShape::bert_base());
        let ratio = small.total_cycles as f64 / large.total_cycles as f64;
        assert!(
            (1.6..2.1).contains(&ratio),
            "expected ~2x speed-up, got {ratio}"
        );
    }

    #[test]
    fn starved_bandwidth_exposes_dma_stalls() {
        let mut config = AcceleratorConfig::zcu102_n8_m16();
        // An absurdly slow memory system cannot be hidden any more.
        config.frequency_hz = 214.0e6;
        let mut scheduler = Scheduler::new(config);
        scheduler.ddr.bandwidth_bytes_per_sec = 0.05e9;
        let trace = scheduler.schedule_layer(&EncoderShape::bert_base());
        assert!(trace.dma_stall_cycles > 0);
        assert!(trace.pe_utilization() < 0.9);
    }

    #[test]
    fn wider_weights_cost_more_pe_cycles_per_layer() {
        let scheduler = Scheduler::new(AcceleratorConfig::zcu111_n16_m16());
        let shape = EncoderShape::bert_base();
        let w4 = scheduler.schedule_layer_mixed(&shape, &LayerBits::uniform(4));
        let w8 = scheduler.schedule_layer_mixed(&shape, &LayerBits::uniform(8));
        let mut mixed_bits = LayerBits::uniform(4);
        mixed_bits.ffn1 = 8;
        mixed_bits.ffn2 = 8;
        let mixed = scheduler.schedule_layer_mixed(&shape, &mixed_bits);
        assert!(
            w4.pe_critical_cycles < mixed.pe_critical_cycles
                && mixed.pe_critical_cycles < w8.pe_critical_cycles,
            "expected w4 {} < mixed {} < w8 {}",
            w4.pe_critical_cycles,
            mixed.pe_critical_cycles,
            w8.pe_critical_cycles
        );
        // Uniform bits through the mixed path equal the uniform path.
        assert_eq!(scheduler.schedule_layer(&shape), w4);
    }

    #[test]
    fn gantt_rendering_contains_every_stage() {
        let scheduler = Scheduler::new(AcceleratorConfig::zcu102_n8_m16());
        let trace = scheduler.schedule_layer(&EncoderShape::bert_base());
        let gantt = trace.render_gantt(60);
        for name in ["X·Wq", "Softmax", "FFN2", "Add&LN"] {
            assert!(gantt.contains(name), "missing stage {name} in gantt");
        }
        assert_eq!(gantt.lines().count(), trace.stages.len());
    }

    #[test]
    fn schedule_order_is_monotonic_on_the_pe_array() {
        let scheduler = Scheduler::new(AcceleratorConfig::zcu102_n16_m8());
        let trace = scheduler.schedule_layer(&EncoderShape::bert_base());
        let mut prev_end = 0;
        for stage in trace.stages.iter().filter(|s| {
            matches!(
                s.kind,
                StageKind::MatmulAct8Weight4 | StageKind::MatmulAct8Act8
            )
        }) {
            assert!(stage.compute_start >= prev_end);
            assert!(stage.compute_end >= stage.compute_start);
            prev_end = stage.compute_end;
        }
    }
}
