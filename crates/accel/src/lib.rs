//! Cycle-level simulator of the FQ-BERT FPGA accelerator (paper §III).
//!
//! The hardware the paper builds is modelled at two levels:
//!
//! * **Bit-accurate datapath** — [`bim`] implements the Bit-split
//!   Inner-product Module (M 8b×4b multipliers plus shift-add logic, Type A
//!   and Type B variants) and proves it equal to exact integer arithmetic;
//!   [`pe`] builds the dot-product Processing Element and Processing Unit on
//!   top of it; [`cores`] wraps the LUT softmax and the 3-stage SIMD layer
//!   norm with their cycle costs.
//! * **Performance / cost models** — [`dataflow`] decomposes one encoder
//!   layer into the stages of Fig. 5, [`scheduler`] overlaps weight streaming
//!   with compute (double-buffered weight buffer), [`cycle_model`] produces
//!   end-to-end latency, and [`resource`] / [`power`] estimate the FPGA
//!   resources and power, calibrated against the paper's Table III/IV.
//!
//! No FPGA is required: the datapath behaviour is exact, and the
//! latency/resource constants are calibrated to the published numbers so the
//! *scaling* across configurations is reproduced (see DESIGN.md for the
//! substitution argument).

pub mod bim;
pub mod config;
pub mod cores;
pub mod cycle_model;
pub mod dataflow;
pub mod memory;
pub mod pe;
pub mod power;
pub mod resource;
pub mod scheduler;

pub use bim::{Bim, BimType};
pub use config::{AcceleratorConfig, FpgaDevice};
pub use cores::{LnCore, SoftmaxCore};
pub use cycle_model::{LatencyBreakdown, LatencyReport};
pub use dataflow::{EncoderStage, StageKind};
pub use memory::{BufferPlan, DdrModel};
pub use pe::{ProcessingElement, ProcessingUnit};
pub use power::PowerModel;
pub use resource::{ResourceEstimate, ResourceModel};
pub use scheduler::{ScheduleTrace, Scheduler, StageTiming};
