//! Optimizers for the quantization-aware fine-tuning loop.
//!
//! Parameters live outside the [`crate::Graph`] (as plain tensors owned by
//! the model), so the optimizers here operate on `(parameter, gradient)`
//! pairs indexed by position: the trainer must present parameters in the same
//! order on every step.

use fqbert_tensor::Tensor;

/// Common interface of the optimizers used by the BERT trainer.
pub trait Optimizer {
    /// Applies one update step. `params` and `grads` are matched by index and
    /// must be presented in the same order on every call.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` have different lengths, or if the shape
    /// of any parameter changes between steps.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used for warm-up / decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates an SGD optimizer with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.dims())).collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            assert_eq!(p.dims(), g.dims(), "parameter/gradient shape mismatch");
            if self.momentum > 0.0 {
                *v = v
                    .scale(self.momentum)
                    .add(g)
                    .expect("velocity shape matches gradient");
                **p = p.sub(&v.scale(self.lr)).expect("same shape");
            } else {
                **p = p.sub(&g.scale(self.lr)).expect("same shape");
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), the optimizer used for BERT fine-tuning.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.dims())).collect();
        }
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            assert_eq!(p.dims(), g.dims(), "parameter/gradient shape mismatch");
            self.m[i] = self.m[i]
                .scale(self.beta1)
                .add(&g.scale(1.0 - self.beta1))
                .expect("same shape");
            let g_sq = g.mul(g).expect("same shape");
            self.v[i] = self.v[i]
                .scale(self.beta2)
                .add(&g_sq.scale(1.0 - self.beta2))
                .expect("same shape");
            let m_hat = self.m[i].scale(1.0 / bias1);
            let v_hat = self.v[i].scale(1.0 / bias2);
            let eps = self.eps;
            let update = m_hat
                .zip_with(&v_hat, "adam_update", |m, v| m / (v.sqrt() + eps))
                .expect("same shape");
            **p = p.sub(&update.scale(self.lr)).expect("same shape");
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with the given optimizer and returns the
    /// final parameter value.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::scalar(0.0);
        for _ in 0..steps {
            let grad = Tensor::scalar(2.0 * (x.as_slice()[0] - 3.0));
            opt.step(&mut [&mut x], &[&grad]);
        }
        x.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "sgd did not converge: {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "sgd+momentum did not converge: {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "adam did not converge: {x}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut x = Tensor::scalar(0.0);
        opt.step(&mut [&mut x], &[]);
    }

    #[test]
    fn multi_parameter_update() {
        let mut opt = Adam::new(0.3);
        let mut a = Tensor::scalar(-2.0);
        let mut b = Tensor::full(&[2], 5.0);
        for _ in 0..400 {
            let ga = Tensor::scalar(2.0 * (a.as_slice()[0] - 1.0));
            let gb = b.map(|x| 2.0 * (x + 1.0));
            opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!((a.as_slice()[0] - 1.0).abs() < 0.05);
        assert!(b.as_slice().iter().all(|&x| (x + 1.0).abs() < 0.05));
    }
}
