//! Arithmetic and shape operations on the autograd tape.

use crate::graph::{Graph, VarId};
use crate::Result;
use fqbert_tensor::Tensor;

impl Graph {
    /// Element-wise addition `lhs + rhs` (used for residual connections).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or mismatched shapes.
    pub fn add(&mut self, lhs: VarId, rhs: VarId) -> Result<VarId> {
        self.check(lhs)?;
        self.check(rhs)?;
        let value = self.value(lhs).add(self.value(rhs))?;
        let backward =
            Box::new(move |grad: &Tensor| vec![(lhs, grad.clone()), (rhs, grad.clone())]);
        Ok(self.push(value, Some(backward), false))
    }

    /// Element-wise subtraction `lhs - rhs`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or mismatched shapes.
    pub fn sub(&mut self, lhs: VarId, rhs: VarId) -> Result<VarId> {
        self.check(lhs)?;
        self.check(rhs)?;
        let value = self.value(lhs).sub(self.value(rhs))?;
        let backward =
            Box::new(move |grad: &Tensor| vec![(lhs, grad.clone()), (rhs, grad.scale(-1.0))]);
        Ok(self.push(value, Some(backward), false))
    }

    /// Element-wise (Hadamard) product `lhs * rhs`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or mismatched shapes.
    pub fn mul(&mut self, lhs: VarId, rhs: VarId) -> Result<VarId> {
        self.check(lhs)?;
        self.check(rhs)?;
        let a = self.value(lhs).clone();
        let b = self.value(rhs).clone();
        let value = a.mul(&b)?;
        let backward = Box::new(move |grad: &Tensor| {
            vec![
                (lhs, grad.mul(&b).expect("shape checked in forward")),
                (rhs, grad.mul(&a).expect("shape checked in forward")),
            ]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Multiplication by a compile-time scalar (e.g. `1/sqrt(d_k)` attention
    /// scaling).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn scale(&mut self, x: VarId, s: f32) -> Result<VarId> {
        self.check(x)?;
        let value = self.value(x).scale(s);
        let backward = Box::new(move |grad: &Tensor| vec![(x, grad.scale(s))]);
        Ok(self.push(value, Some(backward), false))
    }

    /// Adds a bias row-vector to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or a bias length that does not match
    /// the number of columns.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> Result<VarId> {
        self.check(x)?;
        self.check(bias)?;
        let value = self.value(x).add_bias(self.value(bias))?;
        let bias_dims = self.value(bias).dims().to_vec();
        let backward = Box::new(move |grad: &Tensor| {
            let (rows, cols) = grad.as_matrix_dims().expect("rank checked in forward");
            let mut bias_grad = vec![0.0f32; cols];
            for i in 0..rows {
                for (j, bg) in bias_grad.iter_mut().enumerate() {
                    *bg += grad.row(i)[j];
                }
            }
            let bias_grad = Tensor::from_vec(bias_grad, &bias_dims).expect("bias shape preserved");
            vec![(x, grad.clone()), (bias, bias_grad)]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Matrix–matrix product of two rank-2 variables.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or incompatible shapes.
    pub fn matmul(&mut self, lhs: VarId, rhs: VarId) -> Result<VarId> {
        self.check(lhs)?;
        self.check(rhs)?;
        let a = self.value(lhs).clone();
        let b = self.value(rhs).clone();
        let value = a.matmul(&b)?;
        let backward = Box::new(move |grad: &Tensor| {
            // dL/dA = dL/dY · Bᵀ ; dL/dB = Aᵀ · dL/dY
            let da = grad
                .matmul_transposed(&b)
                .expect("shapes checked in forward");
            let db = a
                .transpose2()
                .and_then(|at| at.matmul(grad))
                .expect("shapes checked in forward");
            vec![(lhs, da), (rhs, db)]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Matrix product with the right-hand side transposed, `lhs · rhsᵀ`
    /// (used for the attention score matrix `Q · Kᵀ`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or incompatible shapes.
    pub fn matmul_transposed(&mut self, lhs: VarId, rhs: VarId) -> Result<VarId> {
        self.check(lhs)?;
        self.check(rhs)?;
        let a = self.value(lhs).clone();
        let b = self.value(rhs).clone();
        let value = a.matmul_transposed(&b)?;
        let backward = Box::new(move |grad: &Tensor| {
            // Y = A·Bᵀ: dA = dY·B ; dB = dYᵀ·A
            let da = grad.matmul(&b).expect("shapes checked in forward");
            let db = grad
                .transpose2()
                .and_then(|gt| gt.matmul(&a))
                .expect("shapes checked in forward");
            vec![(lhs, da), (rhs, db)]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Transposes a rank-2 variable.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or a non-matrix operand.
    pub fn transpose2(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let value = self.value(x).transpose2()?;
        let backward = Box::new(move |grad: &Tensor| {
            vec![(x, grad.transpose2().expect("gradient is rank 2"))]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Reshapes a variable without changing its data.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or mismatched element counts.
    pub fn reshape(&mut self, x: VarId, dims: &[usize]) -> Result<VarId> {
        self.check(x)?;
        let original = self.value(x).dims().to_vec();
        let value = self.value(x).reshape(dims)?;
        let backward = Box::new(move |grad: &Tensor| {
            vec![(x, grad.reshape(&original).expect("element count preserved"))]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Extracts columns `[start, end)` of a rank-2 variable (head split).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or an out-of-range column window.
    pub fn slice_cols(&mut self, x: VarId, start: usize, end: usize) -> Result<VarId> {
        self.check(x)?;
        let full_dims = self.value(x).dims().to_vec();
        let value = self.value(x).slice_cols(start, end)?;
        let backward = Box::new(move |grad: &Tensor| {
            let rows = full_dims[0];
            let cols = full_dims[1];
            let mut padded = Tensor::zeros(&[rows, cols]);
            let width = end - start;
            for i in 0..rows {
                padded.row_mut(i)[start..end].copy_from_slice(&grad.row(i)[..width]);
            }
            vec![(x, padded)]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Concatenates rank-2 variables with equal row counts along columns
    /// (multi-head attention concat).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids, an empty part list, or mismatched
    /// row counts.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> Result<VarId> {
        for &p in parts {
            self.check(p)?;
        }
        let tensors: Vec<Tensor> = parts.iter().map(|&p| self.value(p).clone()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::hstack(&refs)?;
        let widths: Vec<usize> = tensors.iter().map(|t| t.dims()[1]).collect();
        let parts_owned = parts.to_vec();
        let backward = Box::new(move |grad: &Tensor| {
            let mut out = Vec::with_capacity(parts_owned.len());
            let mut offset = 0usize;
            for (&pid, &w) in parts_owned.iter().zip(widths.iter()) {
                let slice = grad
                    .slice_cols(offset, offset + w)
                    .expect("column window within gradient");
                out.push((pid, slice));
                offset += w;
            }
            out
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Sum of all elements, producing a scalar node.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn sum_all(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let dims = self.value(x).dims().to_vec();
        let value = Tensor::scalar(self.value(x).sum());
        let backward = Box::new(move |grad: &Tensor| {
            let g = grad.as_slice()[0];
            vec![(x, Tensor::full(&dims, g))]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Mean of all elements, producing a scalar node.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or an empty operand.
    pub fn mean_all(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let dims = self.value(x).dims().to_vec();
        let n = self.value(x).numel() as f32;
        let value = Tensor::scalar(self.value(x).mean()?);
        let backward = Box::new(move |grad: &Tensor| {
            let g = grad.as_slice()[0] / n;
            vec![(x, Tensor::full(&dims, g))]
        });
        Ok(self.push(value, Some(backward), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    /// Central-difference gradient check for a scalar-valued builder.
    fn grad_check<F>(param: Tensor, build: F, tol: f32)
    where
        F: Fn(&mut Graph, VarId) -> VarId,
    {
        let mut g = Graph::new();
        let p = g.param(param.clone());
        let loss = build(&mut g, p);
        g.backward(loss).unwrap();
        let analytic = g.grad(p).unwrap().clone();

        let eps = 1e-3f32;
        for i in 0..param.numel() {
            let mut plus = param.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = param.clone();
            minus.as_mut_slice()[i] -= eps;

            let mut gp = Graph::new();
            let pp = gp.param(plus);
            let lp = build(&mut gp, pp);
            let fp = gp.value(lp).as_slice()[0];

            let mut gm = Graph::new();
            let pm = gm.param(minus);
            let lm = build(&mut gm, pm);
            let fm = gm.value(lm).as_slice()[0];

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (numeric - a).abs() < tol,
                "grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn add_backward_passes_gradient_to_both() {
        let mut g = Graph::new();
        let a = g.param(t(&[1.0, 2.0], &[1, 2]));
        let b = g.param(t(&[3.0, 4.0], &[1, 2]));
        let c = g.add(a, b).unwrap();
        let loss = g.sum_all(c).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let x = t(&[0.5, -1.0, 2.0, 0.25, 1.5, -0.75], &[2, 3]);
        grad_check(
            t(&[0.1, -0.2, 0.3, 0.4, -0.5, 0.6], &[3, 2]),
            move |g, w| {
                let xin = g.input(x.clone());
                let y = g.matmul(xin, w).unwrap();
                g.sum_all(y).unwrap()
            },
            1e-2,
        );
    }

    #[test]
    fn matmul_transposed_gradients_match_finite_differences() {
        let x = t(&[0.5, -1.0, 2.0, 0.25], &[2, 2]);
        grad_check(
            t(&[0.1, -0.2, 0.3, 0.4, -0.5, 0.6], &[3, 2]),
            move |g, w| {
                let xin = g.input(x.clone());
                let y = g.matmul_transposed(xin, w).unwrap();
                g.sum_all(y).unwrap()
            },
            1e-2,
        );
    }

    #[test]
    fn mul_and_scale_gradients() {
        grad_check(
            t(&[1.0, -2.0, 0.5, 3.0], &[2, 2]),
            |g, p| {
                let s = g.scale(p, 2.5).unwrap();
                let sq = g.mul(s, p).unwrap();
                g.sum_all(sq).unwrap()
            },
            1e-2,
        );
    }

    #[test]
    fn add_bias_accumulates_over_rows() {
        let mut g = Graph::new();
        let x = g.input(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.param(t(&[0.5, -0.5], &[2]));
        let y = g.add_bias(x, b).unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn slice_concat_round_trip_gradient() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let left = g.slice_cols(x, 0, 1).unwrap();
        let right = g.slice_cols(x, 1, 3).unwrap();
        let joined = g.concat_cols(&[left, right]).unwrap();
        assert_eq!(g.value(joined).as_slice(), g.value(x).as_slice());
        let loss = g.sum_all(joined).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0; 6]);
    }

    #[test]
    fn transpose_and_reshape_gradients_are_ones_for_sum() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let xt = g.transpose2(x).unwrap();
        let xr = g.reshape(xt, &[6]).unwrap();
        let xr2 = g.reshape(xr, &[6, 1]).unwrap();
        let loss = g.sum_all(xr2).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0; 6]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let mut g = Graph::new();
        let x = g.param(t(&[2.0, 4.0, 6.0, 8.0], &[2, 2]));
        let loss = g.mean_all(x).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.25; 4]);
    }

    #[test]
    fn sub_gradient_signs() {
        let mut g = Graph::new();
        let a = g.param(t(&[1.0, 2.0], &[1, 2]));
        let b = g.param(t(&[5.0, 5.0], &[1, 2]));
        let d = g.sub(a, b).unwrap();
        let loss = g.sum_all(d).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn gradient_accumulates_when_variable_used_twice() {
        let mut g = Graph::new();
        let x = g.param(t(&[3.0], &[1, 1]));
        let y = g.add(x, x).unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0]);
    }
}
