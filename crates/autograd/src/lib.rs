//! Tape-based reverse-mode automatic differentiation.
//!
//! The FQ-BERT paper fine-tunes BERT *with the quantization function in the
//! loop* (quantization-aware training). Reproducing that requires gradients,
//! so this crate provides a small define-by-run autograd engine over
//! [`fqbert_tensor::Tensor`]:
//!
//! * [`Graph`] is an append-only tape. Every operation records the forward
//!   value and a backward closure that maps the output gradient to parent
//!   gradient contributions.
//! * [`VarId`] identifies a node on the tape.
//! * [`optim`] contains the SGD and Adam optimizers used by the trainer.
//!
//! The operation set is exactly what a BERT encoder needs: matmul, bias add,
//! residual add, GELU, row softmax, layer norm, embedding lookup, head
//! split/concat, cross-entropy-from-logits, and the straight-through fake
//! quantizer used for QAT.
//!
//! # Examples
//!
//! ```
//! use fqbert_autograd::Graph;
//! use fqbert_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?);
//! let w = g.param(Tensor::from_vec(vec![3.0, 4.0], &[2, 1])?);
//! let y = g.matmul(x, w)?;
//! let loss = g.sum_all(y)?;
//! g.backward(loss)?;
//! let grad_w = g.grad(w).expect("parameter gradient");
//! assert_eq!(grad_w.as_slice(), &[1.0, 2.0]);
//! # Ok::<(), fqbert_autograd::AutogradError>(())
//! ```

pub mod error;
pub mod graph;
pub mod ops_basic;
pub mod ops_nn;
pub mod ops_quant;
pub mod optim;

pub use error::AutogradError;
pub use graph::{Graph, VarId};
pub use ops_quant::FakeQuantSpec;
pub use optim::{Adam, Optimizer, Sgd};

/// Convenience result alias for autograd operations.
pub type Result<T> = std::result::Result<T, AutogradError>;
