//! Quantization-aware-training operations: the straight-through fake
//! quantizer used to fine-tune FQ-BERT (paper §II).
//!
//! The forward pass performs the paper's symmetric linear quantization
//! (Eq. 1): clamp to `[-clip, clip]`, scale by `s = (2^(k-1) - 1) / clip`,
//! round to the integer grid and immediately dequantize. The backward pass is
//! the standard straight-through estimator: gradients pass unchanged where
//! the input fell inside the clip range and are zeroed where it was clamped.

use crate::graph::{Graph, VarId};
use crate::{AutogradError, Result};
use fqbert_tensor::Tensor;

/// Fake-quantization settings for one tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FakeQuantSpec {
    /// Quantization bit-width `k` (2–8 in the paper's experiments).
    pub bits: u32,
    /// Symmetric clip threshold `MAX` (with `MIN = -MAX`). `None` uses the
    /// tensor's own max-absolute value, i.e. the NO_CLIP setting of Fig. 3.
    pub clip: Option<f32>,
}

impl FakeQuantSpec {
    /// Creates a spec with an explicit clip threshold (the CLIP setting).
    pub fn with_clip(bits: u32, clip: f32) -> Self {
        Self {
            bits,
            clip: Some(clip),
        }
    }

    /// Creates a spec without clipping (scale from the observed max).
    pub fn no_clip(bits: u32) -> Self {
        Self { bits, clip: None }
    }

    /// Largest representable integer level, `2^(k-1) - 1`.
    pub fn qmax(&self) -> f32 {
        ((1u32 << (self.bits - 1)) - 1) as f32
    }
}

/// Quantize-dequantize a tensor according to `spec`, returning the fake
/// quantized tensor and the clip threshold actually used.
pub(crate) fn fake_quantize(input: &Tensor, spec: &FakeQuantSpec) -> (Tensor, f32) {
    let max_abs = input.abs_max().unwrap_or(0.0);
    let clip = spec.clip.unwrap_or(max_abs).max(1e-8);
    let qmax = spec.qmax();
    let scale = qmax / clip;
    let out = input.map(|x| {
        let clamped = x.clamp(-clip, clip);
        (clamped * scale).round() / scale
    });
    (out, clip)
}

impl Graph {
    /// Applies fake quantization (quantize–dequantize) with a
    /// straight-through-estimator backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or a bit-width outside `2..=32`.
    pub fn fake_quant(&mut self, x: VarId, spec: FakeQuantSpec) -> Result<VarId> {
        self.check(x)?;
        if !(2..=32).contains(&spec.bits) {
            return Err(AutogradError::InvalidArgument(format!(
                "unsupported fake-quant bit-width {}",
                spec.bits
            )));
        }
        let input = self.value(x).clone();
        let (value, clip) = fake_quantize(&input, &spec);
        let backward = Box::new(move |grad: &Tensor| {
            // Straight-through estimator: pass the gradient where the input
            // was inside the clip range, block it where it was clamped.
            let mask = input.map(|v| if v.abs() <= clip { 1.0 } else { 0.0 });
            vec![(x, grad.mul(&mask).expect("same shape as forward"))]
        });
        Ok(self.push(value, Some(backward), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn qmax_values() {
        assert_eq!(FakeQuantSpec::no_clip(8).qmax(), 127.0);
        assert_eq!(FakeQuantSpec::no_clip(4).qmax(), 7.0);
        assert_eq!(FakeQuantSpec::no_clip(2).qmax(), 1.0);
    }

    #[test]
    fn fake_quant_is_idempotent() {
        let x = t(&[0.11, -0.53, 0.74, -0.99], &[2, 2]);
        let spec = FakeQuantSpec::no_clip(4);
        let (once, _) = fake_quantize(&x, &spec);
        let (twice, _) = fake_quantize(&once, &spec);
        assert!(once.allclose(&twice, 1e-6));
    }

    #[test]
    fn fake_quant_error_bounded_by_half_step() {
        let x = t(&[0.3, -0.8, 0.05, 1.0, -1.0, 0.61], &[2, 3]);
        let spec = FakeQuantSpec::no_clip(6);
        let (q, clip) = fake_quantize(&x, &spec);
        let step = clip / spec.qmax();
        for (a, b) in x.as_slice().iter().zip(q.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn clipping_clamps_outliers() {
        let x = t(&[10.0, -10.0, 0.5], &[3]);
        let spec = FakeQuantSpec::with_clip(8, 1.0);
        let (q, _) = fake_quantize(&x, &spec);
        assert!((q.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((q.as_slice()[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_bitwidth_quantization_is_nearly_lossless() {
        let x = t(&[0.123, -0.456, 0.789, -0.999], &[4]);
        let spec = FakeQuantSpec::no_clip(16);
        let (q, _) = fake_quantize(&x, &spec);
        assert!(x.allclose(&q, 1e-4));
    }

    #[test]
    fn ste_passes_gradient_inside_clip_and_blocks_outside() {
        let mut g = Graph::new();
        let x = g.param(t(&[0.2, 5.0, -0.7, -9.0], &[2, 2]));
        let y = g.fake_quant(x, FakeQuantSpec::with_clip(8, 1.0)).unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn invalid_bitwidth_is_rejected() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[2]));
        assert!(g.fake_quant(x, FakeQuantSpec::no_clip(1)).is_err());
        assert!(g.fake_quant(x, FakeQuantSpec::no_clip(33)).is_err());
    }

    #[test]
    fn two_bit_quantization_has_three_levels() {
        let x = t(&[0.9, -0.9, 0.1, 0.4, -0.2, -0.6], &[6]);
        let (q, clip) = fake_quantize(&x, &FakeQuantSpec::no_clip(2));
        // With k = 2, the only representable values are {-clip, 0, clip}.
        for &v in q.as_slice() {
            assert!(
                (v.abs() - clip).abs() < 1e-6 || v.abs() < 1e-6,
                "unexpected 2-bit level {v}"
            );
        }
    }
}
