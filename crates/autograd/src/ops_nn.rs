//! Neural-network operations on the autograd tape: activations, softmax,
//! layer normalization, embedding lookup and the classification loss.

use crate::graph::{Graph, VarId};
use crate::{AutogradError, Result};
use fqbert_tensor::Tensor;

/// Derivative of the tanh-approximated GELU at `x`.
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    const A: f32 = 0.044_715;
    let u = C * (x + A * x * x * x);
    let t = u.tanh();
    let du_dx = C * (1.0 + 3.0 * A * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du_dx
}

impl Graph {
    /// GELU activation (tanh approximation, as used by BERT's FFN).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn gelu(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let input = self.value(x).clone();
        let value = input.gelu();
        let backward = Box::new(move |grad: &Tensor| {
            let local = input.map(gelu_grad_scalar);
            vec![(x, grad.mul(&local).expect("same shape as forward"))]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// ReLU activation.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id.
    pub fn relu(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let input = self.value(x).clone();
        let value = input.relu();
        let backward = Box::new(move |grad: &Tensor| {
            let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            vec![(x, grad.mul(&mask).expect("same shape as forward"))]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Numerically stable softmax over each row of a rank-2 variable.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id or a non-matrix operand.
    pub fn softmax_rows(&mut self, x: VarId) -> Result<VarId> {
        self.check(x)?;
        let value = self.value(x).softmax_rows()?;
        let softmax = value.clone();
        let backward = Box::new(move |grad: &Tensor| {
            // dL/dx_i = s_i * (dL/ds_i - Σ_j dL/ds_j s_j), per row.
            let (rows, cols) = softmax.as_matrix_dims().expect("rank checked in forward");
            let mut out = Tensor::zeros(&[rows, cols]);
            for r in 0..rows {
                let s = softmax.row(r);
                let gy = grad.row(r);
                let dot: f32 = s.iter().zip(gy.iter()).map(|(&a, &b)| a * b).sum();
                for c in 0..cols {
                    out.row_mut(r)[c] = s[c] * (gy[c] - dot);
                }
            }
            vec![(x, out)]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Layer normalization over the last dimension of a rank-2 variable with
    /// learnable `gamma` and `beta`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or inconsistent shapes.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> Result<VarId> {
        self.check(x)?;
        self.check(gamma)?;
        self.check(beta)?;
        let input = self.value(x).clone();
        let g = self.value(gamma).clone();
        let b = self.value(beta).clone();
        let value = input.layer_norm(&g, &b, eps)?;
        let backward = Box::new(move |grad: &Tensor| {
            let (rows, cols) = input.as_matrix_dims().expect("rank checked in forward");
            let n = cols as f32;
            let mut dx = Tensor::zeros(&[rows, cols]);
            let mut dgamma = vec![0.0f32; cols];
            let mut dbeta = vec![0.0f32; cols];
            let gs = g.as_slice();
            for r in 0..rows {
                let row = input.row(r);
                let gy = grad.row(r);
                let mean = row.iter().sum::<f32>() / n;
                let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
                let inv_std = 1.0 / (var + eps).sqrt();
                // Normalised activations and the two reduction terms of the
                // standard layer-norm backward formula.
                let xhat: Vec<f32> = row.iter().map(|&v| (v - mean) * inv_std).collect();
                let dy_g: Vec<f32> = gy.iter().zip(gs.iter()).map(|(&a, &w)| a * w).collect();
                let sum_dy_g: f32 = dy_g.iter().sum();
                let sum_dy_g_xhat: f32 = dy_g.iter().zip(xhat.iter()).map(|(&a, &h)| a * h).sum();
                for c in 0..cols {
                    dgamma[c] += gy[c] * xhat[c];
                    dbeta[c] += gy[c];
                    dx.row_mut(r)[c] =
                        inv_std / n * (n * dy_g[c] - sum_dy_g - xhat[c] * sum_dy_g_xhat);
                }
            }
            let gamma_dims = g.dims().to_vec();
            let beta_dims = b.dims().to_vec();
            vec![
                (x, dx),
                (
                    gamma,
                    Tensor::from_vec(dgamma, &gamma_dims).expect("gamma shape preserved"),
                ),
                (
                    beta,
                    Tensor::from_vec(dbeta, &beta_dims).expect("beta shape preserved"),
                ),
            ]
        });
        Ok(self.push(value, Some(backward), false))
    }

    /// Embedding lookup: gathers rows of `table` (shape `[vocab, hidden]`) for
    /// every id in `ids`, producing a `[ids.len(), hidden]` variable.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id, a non-matrix table, or an
    /// out-of-vocabulary token id.
    pub fn embedding(&mut self, table: VarId, ids: &[usize]) -> Result<VarId> {
        self.check(table)?;
        let tbl = self.value(table).clone();
        let (vocab, hidden) = tbl.as_matrix_dims()?;
        for &id in ids {
            if id >= vocab {
                return Err(AutogradError::InvalidArgument(format!(
                    "token id {id} out of range for vocabulary of {vocab}"
                )));
            }
        }
        let mut out = Tensor::zeros(&[ids.len(), hidden]);
        for (row, &id) in ids.iter().enumerate() {
            out.row_mut(row).copy_from_slice(tbl.row(id));
        }
        let ids_owned = ids.to_vec();
        let backward = Box::new(move |grad: &Tensor| {
            let mut dtable = Tensor::zeros(&[vocab, hidden]);
            for (row, &id) in ids_owned.iter().enumerate() {
                let src = grad.row(row);
                let dst = dtable.row_mut(id);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d += s;
                }
            }
            vec![(table, dtable)]
        });
        Ok(self.push(out, Some(backward), false))
    }

    /// Mean cross-entropy between row logits and integer class labels,
    /// computed from logits for numerical stability.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown id, a non-matrix operand, a label list
    /// whose length differs from the number of rows, or an out-of-range label.
    pub fn cross_entropy_logits(&mut self, logits: VarId, labels: &[usize]) -> Result<VarId> {
        self.check(logits)?;
        let z = self.value(logits).clone();
        let (rows, cols) = z.as_matrix_dims()?;
        if labels.len() != rows {
            return Err(AutogradError::InvalidArgument(format!(
                "{} labels supplied for {rows} logit rows",
                labels.len()
            )));
        }
        for &l in labels {
            if l >= cols {
                return Err(AutogradError::InvalidArgument(format!(
                    "label {l} out of range for {cols} classes"
                )));
            }
        }
        let probs = z.softmax_rows()?;
        let mut loss = 0.0f32;
        for (r, &label) in labels.iter().enumerate() {
            loss -= probs.row(r)[label].max(1e-12).ln();
        }
        loss /= rows as f32;
        let labels_owned = labels.to_vec();
        let backward = Box::new(move |grad: &Tensor| {
            let scale = grad.as_slice()[0] / rows as f32;
            let mut dz = probs.clone();
            for (r, &label) in labels_owned.iter().enumerate() {
                dz.row_mut(r)[label] -= 1.0;
            }
            vec![(logits, dz.scale(scale))]
        });
        Ok(self.push(Tensor::scalar(loss), Some(backward), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    fn numeric_grad<F>(param: &Tensor, build: &F, i: usize) -> f32
    where
        F: Fn(&mut Graph, VarId) -> VarId,
    {
        let eps = 1e-3f32;
        let eval = |p: Tensor| {
            let mut g = Graph::new();
            let pid = g.param(p);
            let loss = build(&mut g, pid);
            g.value(loss).as_slice()[0]
        };
        let mut plus = param.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = param.clone();
        minus.as_mut_slice()[i] -= eps;
        (eval(plus) - eval(minus)) / (2.0 * eps)
    }

    fn grad_check<F>(param: Tensor, build: F, tol: f32)
    where
        F: Fn(&mut Graph, VarId) -> VarId,
    {
        let mut g = Graph::new();
        let pid = g.param(param.clone());
        let loss = build(&mut g, pid);
        g.backward(loss).unwrap();
        let analytic = g.grad(pid).unwrap().clone();
        for i in 0..param.numel() {
            let numeric = numeric_grad(&param, &build, i);
            let a = analytic.as_slice()[i];
            assert!(
                (numeric - a).abs() < tol,
                "grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        grad_check(
            t(&[-2.0, -0.5, 0.0, 0.5, 2.0, 4.0], &[2, 3]),
            |g, p| {
                let y = g.gelu(p).unwrap();
                g.sum_all(y).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn relu_gradient_is_step() {
        let mut g = Graph::new();
        let x = g.param(t(&[-1.0, 2.0, -3.0, 4.0], &[2, 2]));
        let y = g.relu(x).unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_gradient_matches_finite_differences() {
        // Weighted sum of softmax outputs gives a non-trivial upstream grad.
        let weights = t(&[0.3, -0.7, 1.3, 0.1, 0.9, -0.2], &[2, 3]);
        grad_check(
            t(&[0.5, -1.0, 0.25, 2.0, 0.0, -0.5], &[2, 3]),
            move |g, p| {
                let s = g.softmax_rows(p).unwrap();
                let w = g.input(weights.clone());
                let prod = g.mul(s, w).unwrap();
                g.sum_all(prod).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn layer_norm_gradient_matches_finite_differences() {
        let gamma = t(&[1.2, 0.8, 1.0], &[3]);
        let beta = t(&[0.1, -0.1, 0.0], &[3]);
        let weights = t(&[0.3, -0.7, 1.3, 0.1, 0.9, -0.2], &[2, 3]);
        grad_check(
            t(&[0.5, -1.0, 0.25, 2.0, 0.1, -0.5], &[2, 3]),
            move |g, p| {
                let ga = g.param(gamma.clone());
                let be = g.param(beta.clone());
                let y = g.layer_norm(p, ga, be, 1e-5).unwrap();
                let w = g.input(weights.clone());
                let prod = g.mul(y, w).unwrap();
                g.sum_all(prod).unwrap()
            },
            5e-2,
        );
    }

    #[test]
    fn layer_norm_gamma_beta_gradients() {
        let x = t(&[0.5, -1.0, 0.25, 2.0, 0.1, -0.5], &[2, 3]);
        let weights = t(&[0.3, -0.7, 1.3, 0.1, 0.9, -0.2], &[2, 3]);
        grad_check(
            t(&[1.0, 1.0, 1.0, 0.0, 0.0, 0.0], &[6]),
            move |g, p| {
                let wide = g.reshape(p, &[1, 6]).unwrap();
                let gamma = g.slice_cols(wide, 0, 3).unwrap();
                let gamma = g.reshape(gamma, &[3]).unwrap();
                let beta = g.slice_cols(wide, 3, 6).unwrap();
                let beta = g.reshape(beta, &[3]).unwrap();
                let xin = g.input(x.clone());
                let y = g.layer_norm(xin, gamma, beta, 1e-5).unwrap();
                let w = g.input(weights.clone());
                let prod = g.mul(y, w).unwrap();
                g.sum_all(prod).unwrap()
            },
            5e-2,
        );
    }

    #[test]
    fn embedding_forward_and_scatter_backward() {
        let mut g = Graph::new();
        let table = g.param(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
        let out = g.embedding(table, &[2, 0, 2]).unwrap();
        assert_eq!(g.value(out).as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = g.sum_all(out).unwrap();
        g.backward(loss).unwrap();
        // Row 2 is used twice, row 1 never.
        assert_eq!(
            g.grad(table).unwrap().as_slice(),
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn embedding_rejects_out_of_vocab() {
        let mut g = Graph::new();
        let table = g.param(Tensor::zeros(&[3, 2]));
        assert!(g.embedding(table, &[3]).is_err());
    }

    #[test]
    fn cross_entropy_matches_manual_value() {
        let mut g = Graph::new();
        // Uniform logits: loss must equal ln(num_classes).
        let logits = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.cross_entropy_logits(logits, &[0, 3]).unwrap();
        assert!((g.value(loss).as_slice()[0] - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        grad_check(
            t(&[0.5, -1.0, 0.25, 2.0, 0.1, -0.5], &[2, 3]),
            |g, p| g.cross_entropy_logits(p, &[2, 0]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros(&[2, 3]));
        assert!(g.cross_entropy_logits(logits, &[0]).is_err());
        assert!(g.cross_entropy_logits(logits, &[0, 3]).is_err());
    }

    #[test]
    fn training_loss_decreases_with_gradient_steps() {
        // A tiny logistic-regression sanity check: loss must strictly
        // decrease over a few manual SGD steps.
        let x = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.2, 0.1], &[4, 2]);
        let labels = [0usize, 1, 1, 0];
        let mut w = t(&[0.01, -0.02, 0.03, 0.01], &[2, 2]);
        let mut prev = f32::INFINITY;
        for _ in 0..20 {
            let mut g = Graph::new();
            let xin = g.input(x.clone());
            let wid = g.param(w.clone());
            let logits = g.matmul(xin, wid).unwrap();
            let loss = g.cross_entropy_logits(logits, &labels).unwrap();
            let lv = g.value(loss).as_slice()[0];
            assert!(lv <= prev + 1e-4, "loss must not increase: {lv} > {prev}");
            prev = lv;
            g.backward(loss).unwrap();
            let grad = g.grad(wid).unwrap();
            w = w.sub(&grad.scale(0.5)).unwrap();
        }
        assert!(
            prev < 0.6,
            "loss should have decreased substantially: {prev}"
        );
    }
}
