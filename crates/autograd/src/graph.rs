//! The autograd tape: node storage, gradient accumulation and the backward
//! driver.

use crate::{AutogradError, Result};
use fqbert_tensor::Tensor;

/// Identifier of a node (variable) on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the raw index of this variable on its tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A backward closure maps the gradient flowing into a node to gradient
/// contributions for each parent.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(VarId, Tensor)>>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) is_param: bool,
}

/// A define-by-run autograd tape.
///
/// Operations append nodes; [`Graph::backward`] runs the tape in reverse and
/// accumulates gradients into every node that contributed to the loss.
///
/// A fresh graph is built for every training step: model parameters live
/// outside the graph (plain [`Tensor`]s) and are registered as leaves with
/// [`Graph::param`].
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no node has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers an input (non-trainable leaf) and returns its id.
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(value, None, false)
    }

    /// Registers a trainable parameter leaf and returns its id.
    pub fn param(&mut self, value: Tensor) -> VarId {
        self.push(value, None, true)
    }

    /// Appends a node produced by an operation.
    pub(crate) fn push(
        &mut self,
        value: Tensor,
        backward: Option<BackwardFn>,
        is_param: bool,
    ) -> VarId {
        let id = VarId(self.nodes.len());
        self.nodes.push(Node {
            value,
            grad: None,
            backward,
            is_param,
        });
        id
    }

    /// Returns the forward value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Returns the accumulated gradient of a variable, if `backward` has been
    /// run and the variable participated in the loss.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Returns `true` if the variable was registered with [`Graph::param`].
    pub fn is_param(&self, id: VarId) -> bool {
        self.nodes[id.0].is_param
    }

    /// Checks that a variable id belongs to this tape.
    pub(crate) fn check(&self, id: VarId) -> Result<()> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(AutogradError::UnknownVariable(id.0))
        }
    }

    /// Accumulates `contribution` into the gradient slot of `id`.
    fn accumulate(&mut self, id: VarId, contribution: Tensor) -> Result<()> {
        let node = &mut self.nodes[id.0];
        node.grad = Some(match node.grad.take() {
            Some(existing) => existing.add(&contribution)?,
            None => contribution,
        });
        Ok(())
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients are accumulated into every ancestor node; parameters can then
    /// be read back with [`Graph::grad`].
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::NonScalarLoss`] if `loss` does not hold exactly
    /// one element, or [`AutogradError::UnknownVariable`] for a foreign id.
    pub fn backward(&mut self, loss: VarId) -> Result<()> {
        self.check(loss)?;
        let loss_node = &self.nodes[loss.0];
        if loss_node.value.numel() != 1 {
            return Err(AutogradError::NonScalarLoss {
                shape: loss_node.value.dims().to_vec(),
            });
        }
        let seed = Tensor::from_vec(vec![1.0], loss_node.value.dims())?;
        self.accumulate(loss, seed)?;

        // The tape is appended in topological order, so visiting ids in
        // reverse order guarantees every node's gradient is complete before
        // it is propagated to its parents.
        for i in (0..=loss.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            let Some(backward) = self.nodes[i].backward.take() else {
                continue;
            };
            let contributions = backward(&grad);
            // Restore the closure so backward() could in principle be re-run
            // after zero_grad (useful for gradient-checking tests).
            self.nodes[i].backward = Some(backward);
            for (pid, contribution) in contributions {
                debug_assert!(pid.0 < i, "backward edge must point to an earlier node");
                self.accumulate(pid, contribution)?;
            }
        }
        Ok(())
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for node in &mut self.nodes {
            node.grad = None;
        }
    }

    /// Returns the ids of all parameter leaves on the tape, in registration
    /// order.
    pub fn param_ids(&self) -> Vec<VarId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_param)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_registration_and_values() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(2.0));
        let w = g.param(Tensor::scalar(3.0));
        assert_eq!(g.value(x).as_slice(), &[2.0]);
        assert!(!g.is_param(x));
        assert!(g.is_param(w));
        assert_eq!(g.param_ids(), vec![w]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 2]));
        assert!(matches!(
            g.backward(x),
            Err(AutogradError::NonScalarLoss { .. })
        ));
    }

    #[test]
    fn backward_rejects_unknown_id() {
        let mut g = Graph::new();
        let _ = g.input(Tensor::scalar(1.0));
        assert!(matches!(
            g.backward(VarId(99)),
            Err(AutogradError::UnknownVariable(99))
        ));
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut g = Graph::new();
        let x = g.param(Tensor::scalar(2.0));
        let y = g.scale(x, 3.0).unwrap();
        g.backward(y).unwrap();
        assert!(g.grad(x).is_some());
        g.zero_grad();
        assert!(g.grad(x).is_none());
    }
}
