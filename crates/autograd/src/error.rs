//! Error type for autograd operations.

use fqbert_tensor::TensorError;
use std::fmt;

/// Error returned by graph construction and backward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutogradError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The variable id does not belong to this graph.
    UnknownVariable(usize),
    /// `backward` was called on a node that is not a scalar.
    NonScalarLoss {
        /// Shape of the offending node.
        shape: Vec<usize>,
    },
    /// An operation received arguments it cannot handle.
    InvalidArgument(String),
}

impl fmt::Display for AutogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutogradError::Tensor(e) => write!(f, "tensor error: {e}"),
            AutogradError::UnknownVariable(id) => write!(f, "unknown variable id {id}"),
            AutogradError::NonScalarLoss { shape } => {
                write!(f, "backward requires a scalar loss, got shape {shape:?}")
            }
            AutogradError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for AutogradError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutogradError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AutogradError {
    fn from(e: TensorError) -> Self {
        AutogradError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errs: Vec<AutogradError> = vec![
            TensorError::EmptyTensor("max").into(),
            AutogradError::UnknownVariable(3),
            AutogradError::NonScalarLoss { shape: vec![2, 2] },
            AutogradError::InvalidArgument("bad".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_is_source() {
        use std::error::Error;
        let e: AutogradError = TensorError::EmptyTensor("mean").into();
        assert!(e.source().is_some());
    }
}
