//! Blocked, cache-friendly int8 GEMM with packed weights, a fused epilogue
//! and runtime-dispatched SIMD micro-kernels — the software hot path behind
//! every integer linear projection (Q/K/V, attention output, FFN1/FFN2).
//!
//! # Packed layout
//!
//! A weight matrix `W` of shape `[k, n]` (row-major `[in, out]`, as stored by
//! `IntLinear`) is packed **once**, at layer construction or artifact-load
//! time, into column panels of width [`NR`]. Within a panel the reduction
//! dimension is walked **two steps at a time** and the two weights of each
//! column's k-pair sit adjacent in memory:
//!
//! ```text
//! panel p, k-pair pp  (columns p·NR .. p·NR+NR, zero-padded past n and
//! for the odd-k tail):
//!     wide[p·k_pairs + pp][2j + t] = W[2pp + t][p·NR + j]      (t = 0, 1)
//! ```
//!
//! where `k_pairs = ceil(k / 2)`. One `[i16; 2·NR]` row of the panel is
//! exactly what one dispatch step of the micro-kernel consumes: the pair
//! `(W[2pp][c], W[2pp+1][c])` forms the 32-bit lane that x86 `pmaddwd`
//! (`_mm256_madd_epi16`) multiplies against a broadcast activation pair.
//! Weights are stored pre-widened to `i16` — the kernels' multiply operand
//! width — so no sign-extension happens in the hot loop.
//!
//! Low-bit weights (4-bit and 2-bit codes, `[-8, 7]`) can instead be packed
//! with [`PackedWeights::pack_nibble`] into **nibble panels** that the int4
//! kernels consume directly, sign-extending in-register and skipping the
//! unpack-to-i16 copy entirely:
//!
//! ```text
//!     nib[p·k_pairs + pp][j] = nibble(W[2pp][c]) | nibble(W[2pp+1][c]) << 4
//! ```
//!
//! — one byte per column per k-pair, a quarter of the wide panel's resident
//! bytes.
//!
//! Both layouts can also be built **directly from the v2 artifact byte
//! stream** without materialising an intermediate `IntTensor`:
//! [`PackedWeights::from_v2_nibble_bytes`] gathers nibble panels straight
//! from the `pack_i4` encoding (element `e = kk·n + c` lives in nibble
//! `e % 2` of byte `e / 2`), and [`PackedWeights::pack_wide_from_bytes`]
//! widens raw two's-complement `i8` code bytes in place. This is the
//! zero-copy load path: w4 weights go from artifact bytes to compute-ready
//! panels without ever round-tripping through unpacked `i8` codes or `i16`
//! widening.
//!
//! Activations are packed per call into row blocks of height [`MR`] with the
//! same k-pair interleave (`a[pp][2r + t] = X[r0 + r][2pp + t]`), inside a
//! caller-provided [`GemmScratch`] that is reused across layers instead of
//! re-allocated per projection. Because every panel row is a fixed-size
//! array and odd-`k` tails are zero-padded at pack time, the micro-kernels
//! iterate full tiles only — no partial-panel or remainder special cases,
//! and no fallible slice chunking in the hot loop.
//!
//! # Kernel dispatch
//!
//! The per-tile micro-kernel is selected once per process by the
//! [`kernels`] module: an AVX2 path (`_mm256_madd_epi16` accumulator tiles)
//! and an SSE2 fallback on x86_64, a NEON (`smlal`-shaped) path on aarch64,
//! and a portable scalar kernel that doubles as the property-test reference.
//! Selection uses `is_x86_feature_detected!` / compile-target gating and can
//! be overridden with `FQBERT_KERNEL=scalar|sse2|avx2|neon`; see
//! [`kernels::selected`].
//!
//! # Bit-exactness contract
//!
//! For every output element the reduction runs over `kk = 0, 1, …, k-1` in
//! ascending order, exactly like the naive [`IntTensor::matmul_i32`] triple
//! loop. The naive loop saturates the `i32` accumulator after every partial
//! product while these kernels accumulate without saturation; for `i8`
//! operands the two are nevertheless bit-identical because `|a·w| ≤ 128²`
//! bounds every partial sum by `k · 128²`, which stays inside `i32` for all
//! `k ≤` [`MAX_K`] — packing rejects larger `k`. Absent overflow, integer
//! addition is exact and associative, so the SIMD kernels' lane-parallel
//! accumulation produces the same bits as the sequential reduction. The
//! property tests in `tests/proptest_gemm.rs` pin every available kernel to
//! the naive loop across random shapes (including empty matrices,
//! non-multiple-of-block dimensions and int4/int2 nibble panels).

pub mod kernels;

use crate::{IntTensor, Result, TensorError};

/// Width (output columns) of one packed weight panel and of the micro-kernel
/// accumulator tile.
pub const NR: usize = 32;

/// Height (input rows) of one packed activation block and of the
/// micro-kernel accumulator tile.
pub const MR: usize = 4;

/// Length of one k-pair row of a wide weight panel: an interleaved
/// `(W[2pp][c], W[2pp+1][c])` pair per column.
pub const WIDE_B: usize = 2 * NR;

/// Length of one k-pair row of a packed activation block: an interleaved
/// `(X[r][2pp], X[r][2pp+1])` pair per row.
pub const WIDE_A: usize = 2 * MR;

/// The `MR × NR` accumulator tile every micro-kernel updates in place.
pub type AccTile = [[i32; NR]; MR];

/// Largest reduction depth for which unsaturated `i32` accumulation of
/// int8×int8 products cannot overflow (`k · 128² ≤ 2³¹ - 1`, using the
/// worst-case product `(-128)·(-128)`), and therefore the largest `k`
/// [`PackedWeights::pack`] accepts.
pub const MAX_K: usize = i32::MAX as usize / (128 * 128);

/// Panel storage of a packed weight matrix: pre-widened `i16` pairs, or raw
/// two's-complement nibbles for low-bit weights (decoded in-register by the
/// int4 kernel path).
#[derive(Debug, Clone, PartialEq, Eq)]
enum PanelStore {
    /// `panels · k_pairs` rows of interleaved `i16` pairs.
    Wide(Vec<[i16; WIDE_B]>),
    /// `panels · k_pairs` rows of one nibble-pair byte per column.
    Nibble(Vec<[u8; NR]>),
}

/// An int8 weight matrix re-laid-out into [`NR`]-wide, k-pair-interleaved
/// column panels (see the module docs). Built once per layer; read-only
/// afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    store: PanelStore,
    k: usize,
    n: usize,
}

impl PackedWeights {
    /// Packs a `[k, n]` row-major weight matrix into wide (`i16`) column
    /// panels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `weight` is not rank 2 and
    /// [`TensorError::ShapeMismatch`] if `k` exceeds [`MAX_K`] (the depth
    /// beyond which unsaturated `i32` accumulation could overflow and the
    /// bit-exactness contract with `matmul_i32` would break).
    pub fn pack(weight: &IntTensor<i8>) -> Result<Self> {
        let (k, n) = Self::checked_dims(weight)?;
        let panels = n.div_ceil(NR);
        let k_pairs = k.div_ceil(2);
        let mut data = vec![[0i16; WIDE_B]; panels * k_pairs];
        let src = weight.as_slice();
        for p in 0..panels {
            let c0 = p * NR;
            let width = NR.min(n - c0);
            for (pp, dst) in data[p * k_pairs..(p + 1) * k_pairs].iter_mut().enumerate() {
                for t in 0..2 {
                    let kk = 2 * pp + t;
                    if kk >= k {
                        break;
                    }
                    let row = &src[kk * n + c0..kk * n + c0 + width];
                    for (j, &s) in row.iter().enumerate() {
                        dst[2 * j + t] = i16::from(s);
                    }
                }
            }
        }
        Ok(Self {
            store: PanelStore::Wide(data),
            k,
            n,
        })
    }

    /// Packs a `[k, n]` weight matrix of low-bit codes (each in `[-8, 7]`,
    /// i.e. 4-bit or 2-bit quantized weights) into nibble panels consumed
    /// directly by the int4 kernel path — one byte per column per k-pair,
    /// a quarter of the resident bytes of [`PackedWeights::pack`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ValueOutOfRange`] if any code does not fit a
    /// signed nibble, plus the same rank/depth errors as
    /// [`PackedWeights::pack`].
    pub fn pack_nibble(weight: &IntTensor<i8>) -> Result<Self> {
        let (k, n) = Self::checked_dims(weight)?;
        let panels = n.div_ceil(NR);
        let k_pairs = k.div_ceil(2);
        let mut data = vec![[0u8; NR]; panels * k_pairs];
        let src = weight.as_slice();
        for p in 0..panels {
            let c0 = p * NR;
            let width = NR.min(n - c0);
            for (pp, dst) in data[p * k_pairs..(p + 1) * k_pairs].iter_mut().enumerate() {
                for (j, d) in dst.iter_mut().enumerate().take(width) {
                    let lo = crate::pack4::nibble(src[2 * pp * n + c0 + j])?;
                    let hi = if 2 * pp + 1 < k {
                        crate::pack4::nibble(src[(2 * pp + 1) * n + c0 + j])?
                    } else {
                        0
                    };
                    *d = lo | (hi << 4);
                }
            }
        }
        Ok(Self {
            store: PanelStore::Nibble(data),
            k,
            n,
        })
    }

    /// Packs wide (`i16`) column panels directly from a `[k, n]` row-major
    /// stream of two's-complement `i8` code bytes — the v2 artifact
    /// encoding of 8-bit weights — without materialising an intermediate
    /// `IntTensor`. Produces panels bit-identical to
    /// [`PackedWeights::pack`] over the same codes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bytes` is not exactly
    /// `k · n` bytes or `k` exceeds [`MAX_K`].
    pub fn pack_wide_from_bytes(bytes: &[u8], k: usize, n: usize) -> Result<Self> {
        Self::checked_depth(k, n)?;
        if bytes.len() != k * n {
            return Err(TensorError::ShapeMismatch {
                op: "gemm_pack_wide_from_bytes (byte count)",
                lhs: vec![bytes.len()],
                rhs: vec![k * n],
            });
        }
        let panels = n.div_ceil(NR);
        let k_pairs = k.div_ceil(2);
        let mut data = vec![[0i16; WIDE_B]; panels * k_pairs];
        for p in 0..panels {
            let c0 = p * NR;
            let width = NR.min(n - c0);
            for (pp, dst) in data[p * k_pairs..(p + 1) * k_pairs].iter_mut().enumerate() {
                for t in 0..2 {
                    let kk = 2 * pp + t;
                    if kk >= k {
                        break;
                    }
                    let row = &bytes[kk * n + c0..kk * n + c0 + width];
                    for (j, &s) in row.iter().enumerate() {
                        // fqlint::allow(narrowing-cast): same-width
                        // `u8 -> i8` reinterpretation — the byte stream
                        // stores two's-complement codes.
                        dst[2 * j + t] = i16::from(s as i8);
                    }
                }
            }
        }
        Ok(Self {
            store: PanelStore::Wide(data),
            k,
            n,
        })
    }

    /// Builds nibble panels directly from the v2 artifact's `pack_i4` byte
    /// stream for a `[k, n]` weight matrix: flat element `e = kk·n + c`
    /// occupies nibble `e % 2` of byte `e / 2` (low nibble first). The
    /// panel gather pairs the nibbles of rows `2pp` and `2pp + 1` of each
    /// column — a pure nibble shuffle with no widening, producing panels
    /// bit-identical to [`PackedWeights::pack_nibble`] over the unpacked
    /// codes. Every nibble is a valid two's-complement code, so unlike the
    /// unpack path no per-element range check is needed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bytes` is not exactly
    /// `ceil(k·n / 2)` bytes or `k` exceeds [`MAX_K`], and
    /// [`TensorError::ValueOutOfRange`] if an odd `k·n` leaves a non-zero
    /// final high nibble (corrupt encoding — the packer zeroes it).
    pub fn from_v2_nibble_bytes(bytes: &[u8], k: usize, n: usize) -> Result<Self> {
        Self::checked_depth(k, n)?;
        let numel = k * n;
        if bytes.len() != numel.div_ceil(2) {
            return Err(TensorError::ShapeMismatch {
                op: "gemm_from_v2_nibble_bytes (byte count)",
                lhs: vec![bytes.len()],
                rhs: vec![numel.div_ceil(2)],
            });
        }
        if numel % 2 == 1 {
            let last = bytes[bytes.len() - 1];
            if last >> 4 != 0 {
                return Err(TensorError::ValueOutOfRange {
                    what: "trailing int4 high nibble (must be zero padding)",
                    value: i64::from(last >> 4),
                });
            }
        }
        let nib_at = |e: usize| (bytes[e / 2] >> (4 * (e % 2))) & 0x0f;
        let panels = n.div_ceil(NR);
        let k_pairs = k.div_ceil(2);
        let mut data = vec![[0u8; NR]; panels * k_pairs];
        for p in 0..panels {
            let c0 = p * NR;
            let width = NR.min(n - c0);
            for (pp, dst) in data[p * k_pairs..(p + 1) * k_pairs].iter_mut().enumerate() {
                for (j, d) in dst.iter_mut().enumerate().take(width) {
                    let lo = nib_at(2 * pp * n + c0 + j);
                    let hi = if 2 * pp + 1 < k {
                        nib_at((2 * pp + 1) * n + c0 + j)
                    } else {
                        0
                    };
                    *d = lo | (hi << 4);
                }
            }
        }
        Ok(Self {
            store: PanelStore::Nibble(data),
            k,
            n,
        })
    }

    /// Shared rank / depth validation for both packers.
    fn checked_dims(weight: &IntTensor<i8>) -> Result<(usize, usize)> {
        let (k, n) = weight.as_matrix_dims()?;
        Self::checked_depth(k, n)?;
        Ok((k, n))
    }

    /// Depth validation shared with the from-bytes constructors.
    fn checked_depth(k: usize, n: usize) -> Result<()> {
        if k > MAX_K {
            return Err(TensorError::ShapeMismatch {
                op: "gemm_pack (k exceeds MAX_K)",
                lhs: vec![k, n],
                rhs: vec![MAX_K, n],
            });
        }
        Ok(())
    }

    /// Reduction depth (input features) of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the panels hold raw nibbles (int4 compute path) rather than
    /// pre-widened `i16` pairs.
    pub fn is_nibble(&self) -> bool {
        matches!(self.store, PanelStore::Nibble(_))
    }

    /// Bytes resident in the packed panel storage.
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            PanelStore::Wide(data) => data.len() * WIDE_B * std::mem::size_of::<i16>(),
            PanelStore::Nibble(data) => data.len() * NR,
        }
    }
}

/// Reusable packing buffer for the activation side of the GEMM.
///
/// One scratch serves every projection of every encoder layer in a forward
/// pass; reusing it avoids an allocation per GEMM (12 layers × 6 projections
/// per batch).
#[derive(Debug, Default)]
pub struct GemmScratch {
    /// One `[i16; 2·MR]` row per k-pair: `a_block[pp][2r + t] = X[r0+r][2pp+t]`.
    a_block: Vec<[i16; WIDE_A]>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch whose packing buffer is already sized for
    /// reduction depths up to `k`, so the first GEMM through it allocates
    /// nothing. Long-lived owners (e.g. a worker thread that keeps one
    /// scratch across every batch it serves) size it once for the deepest
    /// projection of their model.
    pub fn with_depth(k: usize) -> Self {
        let mut scratch = Self::default();
        scratch.reserve_depth(k);
        scratch
    }

    /// Grows the packing buffer to hold an activation block of reduction
    /// depth `k` (no-op when already large enough). The buffer never
    /// shrinks, so a scratch reused across layers settles at the deepest
    /// projection and stays allocation-free from then on.
    pub fn reserve_depth(&mut self, k: usize) {
        let need = k.div_ceil(2);
        if self.a_block.capacity() < need {
            self.a_block.reserve(need - self.a_block.len());
        }
    }

    /// Largest reduction depth the current buffer can pack without
    /// reallocating.
    pub fn depth_capacity(&self) -> usize {
        self.a_block.capacity() * 2
    }

    /// Packs rows `r0 .. r0+rows` of `x` (row-major, `k` columns) into the
    /// k-pair-interleaved `[pp][2r + t]` layout, widening to the kernels'
    /// `i16` operand width and zero-padding missing rows up to [`MR`] and
    /// the odd-`k` tail.
    fn pack_rows(&mut self, x: &[i8], k: usize, r0: usize, rows: usize) -> &[[i16; WIDE_A]] {
        let k_pairs = k.div_ceil(2);
        self.a_block.clear();
        self.a_block.resize(k_pairs, [0i16; WIDE_A]);
        for r in 0..rows {
            let src = &x[(r0 + r) * k..(r0 + r + 1) * k];
            for (pair, dst) in src.chunks(2).zip(self.a_block.iter_mut()) {
                dst[2 * r] = i16::from(pair[0]);
                if let Some(&v) = pair.get(1) {
                    dst[2 * r + 1] = i16::from(v);
                }
            }
        }
        &self.a_block
    }
}

/// Drives the blocked GEMM `x (m×k) · W (k×n)` and feeds every finished
/// accumulator row segment to `sink(row, c0, accs)` in row-block/panel
/// order (`accs[j]` is the accumulator for column `c0 + j`), through the
/// process-selected micro-kernel. Handing the epilogue a contiguous
/// segment instead of one element at a time is what lets
/// [`gemm_i8_requant`] run a SIMD fixup over it.
fn gemm_drive<F: FnMut(usize, usize, &[i32])>(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
    mut sink: F,
) -> Result<(usize, usize)> {
    let (m, k) = x.as_matrix_dims()?;
    if k != weights.k {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_i8",
            lhs: x.dims().to_vec(),
            rhs: vec![weights.k, weights.n],
        });
    }
    let n = weights.n;
    let panels = n.div_ceil(NR);
    let k_pairs = k.div_ceil(2);
    let kernel = kernels::selected();
    let xs = x.as_slice();
    for r0 in (0..m).step_by(MR) {
        let rows = MR.min(m - r0);
        scratch.pack_rows(xs, k, r0, rows);
        for p in 0..panels {
            let c0 = p * NR;
            let cols = NR.min(n - c0);
            let mut acc = [[0i32; NR]; MR];
            match &weights.store {
                PanelStore::Wide(data) => {
                    (kernel.wide)(
                        &scratch.a_block,
                        &data[p * k_pairs..(p + 1) * k_pairs],
                        &mut acc,
                    );
                }
                PanelStore::Nibble(data) => {
                    (kernel.nibble)(
                        &scratch.a_block,
                        &data[p * k_pairs..(p + 1) * k_pairs],
                        &mut acc,
                    );
                }
            }
            for (r, row) in acc.iter().enumerate().take(rows) {
                sink(r0 + r, c0, &row[..cols]);
            }
        }
    }
    Ok((m, n))
}

/// Blocked GEMM returning the raw `i32` accumulators,
/// bit-identical to [`IntTensor::matmul_i32`] (see the module docs for the
/// contract). Mostly useful for tests and diagnostics — the engine uses the
/// fused [`gemm_i8_fused`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x`'s width differs from the
/// packed `k`, or a rank error for non-matrix inputs.
pub fn gemm_i8_i32(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
) -> Result<IntTensor<i32>> {
    let mut out = IntTensor::<i32>::zeros(&[x.as_matrix_dims()?.0, weights.n]);
    let n = weights.n;
    {
        let slice = out.as_mut_slice();
        gemm_drive(x, weights, scratch, |r, c0, accs| {
            slice[r * n + c0..r * n + c0 + accs.len()].copy_from_slice(accs);
        })?;
    }
    Ok(out)
}

/// Blocked GEMM with a fused epilogue: every `i32` accumulator is mapped to
/// an output `i8` code by `epilogue(acc, col)` — typically bias add plus
/// fixed-point requantization — without materialising an intermediate `i32`
/// tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x`'s width differs from the
/// packed `k`, or a rank error for non-matrix inputs.
pub fn gemm_i8_fused<F: Fn(i32, usize) -> i8>(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
    epilogue: F,
) -> Result<IntTensor<i8>> {
    let mut out = IntTensor::<i8>::zeros(&[x.as_matrix_dims()?.0, weights.n]);
    let n = weights.n;
    {
        let slice = out.as_mut_slice();
        gemm_drive(x, weights, scratch, |r, c0, accs| {
            for (j, &acc) in accs.iter().enumerate() {
                slice[r * n + c0 + j] = epilogue(acc, c0 + j);
            }
        })?;
    }
    Ok(out)
}

/// Fixed-point requantization parameters for the fused GEMM epilogue:
/// `out = clamp(round(  (acc + bias) · multiplier / 2^shift ), ±clamp)`
/// with round-half-away-from-zero — exactly
/// `fqbert_quant::Requantizer::apply` followed by the `i8` clamp, expressed
/// as plain fields so the tensor crate needs no quant dependency.
///
/// The effective output bound is `min(clamp, 127)`: the epilogue produces
/// `i8` codes, so wider bounds are meaningless and are capped rather than
/// wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequantParams {
    /// Fixed-point multiplier (Q1.30-normalised by `Requantizer`, but any
    /// `i64` is accepted — out-of-envelope values take the exact scalar
    /// path).
    pub multiplier: i64,
    /// Right shift applied after the multiply; values `<= 0` mean no shift.
    pub shift: i32,
    /// Symmetric output saturation bound (capped at 127).
    pub clamp: i32,
}

impl RequantParams {
    /// Whether the SIMD requantize kernels compute this parameter set
    /// exactly in `i64` arithmetic: `multiplier ∈ [0, 2^30]` (the Q1.30
    /// normalised-mantissa range, denormal folding included), `shift ∈
    /// [0, 62]` and `clamp ∈ [0, 127]`. Every `Requantizer` produces
    /// parameters inside this envelope; anything outside falls back to the
    /// 128-bit scalar reference.
    ///
    /// Inside the envelope `|acc + bias| ≤ 2^32`, so `|product| ≤ 2^62` and
    /// `product + half ≤ 2^62 + 2^61 < 2^63` — `i64` arithmetic is exact
    /// and the SIMD path is bit-identical to the `i128` reference.
    pub fn simd_exact(&self) -> bool {
        (0..=1i64 << 30).contains(&self.multiplier)
            && (0..=62).contains(&self.shift)
            && (0..=i32::from(i8::MAX)).contains(&self.clamp)
    }
}

/// Blocked GEMM with the requantization epilogue fused and SIMD-accelerated:
/// every accumulator row segment gets `+ bias[col]`, the fixed-point
/// multiply/shift/round and the symmetric clamp applied by the
/// process-selected requantize kernel — bit-identical to applying
/// `Requantizer::apply(acc + bias).clamp(-127, 127)` per element (the
/// cross-kernel property tests pin this).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not one entry per
/// output column or `x`'s width differs from the packed `k`, or a rank
/// error for non-matrix inputs.
pub fn gemm_i8_requant(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    bias: &[i32],
    params: RequantParams,
    scratch: &mut GemmScratch,
) -> Result<IntTensor<i8>> {
    if bias.len() != weights.n {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_i8_requant (bias length)",
            lhs: vec![bias.len()],
            rhs: vec![weights.n],
        });
    }
    let kernel: kernels::RequantKernel = if params.simd_exact() {
        kernels::selected().requant
    } else {
        kernels::scalar::requant_row
    };
    let mut out = IntTensor::<i8>::zeros(&[x.as_matrix_dims()?.0, weights.n]);
    let n = weights.n;
    {
        let slice = out.as_mut_slice();
        gemm_drive(x, weights, scratch, |r, c0, accs| {
            kernel(
                accs,
                &bias[c0..c0 + accs.len()],
                params,
                &mut slice[r * n + c0..r * n + c0 + accs.len()],
            );
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_i8(data: Vec<i8>, dims: &[usize]) -> IntTensor<i8> {
        IntTensor::from_vec(data, dims).expect("shape")
    }

    fn pseudo(i: usize) -> i8 {
        (((i as i64 * 2654435761) >> 7) % 255 - 127) as i8
    }

    fn pseudo4(i: usize) -> i8 {
        (((i as i64 * 2654435761) >> 9) % 16 - 8) as i8
    }

    #[test]
    fn matches_naive_matmul_on_non_block_multiple_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (9, 33, 21),
        ] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo(i + 99)).collect(), &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            let mut scratch = GemmScratch::new();
            let blocked = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            let naive = x.matmul_i32(&w).unwrap();
            assert_eq!(blocked, naive, "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn nibble_panels_match_naive_matmul() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (9, 33, 21),
            (2, 63, 40),
        ] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo4(i + 99)).collect(), &[k, n]);
            let packed = PackedWeights::pack_nibble(&w).unwrap();
            assert!(packed.is_nibble());
            let mut scratch = GemmScratch::new();
            let blocked = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            let naive = x.matmul_i32(&w).unwrap();
            assert_eq!(blocked, naive, "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn nibble_packing_rejects_wide_codes() {
        let w = tensor_i8(vec![8, 0, 0, 0], &[2, 2]);
        assert!(PackedWeights::pack_nibble(&w).is_err());
        let w = tensor_i8(vec![0, -9, 0, 0], &[2, 2]);
        assert!(PackedWeights::pack_nibble(&w).is_err());
    }

    #[test]
    fn nibble_panels_quarter_resident_bytes() {
        let w = tensor_i8((0..64 * 64).map(pseudo4).collect(), &[64, 64]);
        let wide = PackedWeights::pack(&w).unwrap();
        let nib = PackedWeights::pack_nibble(&w).unwrap();
        assert_eq!(nib.resident_bytes() * 4, wide.resident_bytes());
    }

    #[test]
    fn empty_matrices_produce_empty_outputs() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(0usize, 4usize, 4usize), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let x = tensor_i8(vec![0; m * k], &[m, k]);
            let w = tensor_i8(vec![0; k * n], &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            let blocked = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            assert_eq!(blocked, x.matmul_i32(&w).unwrap(), "({m},{k},{n})");
            assert_eq!(blocked.dims(), &[m, n]);
        }
    }

    #[test]
    fn fused_epilogue_sees_column_indices() {
        let x = tensor_i8(vec![1, 2, 3, 4], &[2, 2]);
        let w = tensor_i8(vec![1, 0, 0, 0, 1, 0], &[2, 3]);
        let packed = PackedWeights::pack(&w).unwrap();
        let mut scratch = GemmScratch::new();
        let out = gemm_i8_fused(&x, &packed, &mut scratch, |acc, c| {
            (acc + c as i32).clamp(-128, 127) as i8
        })
        .unwrap();
        // x·w = [[1,2,0],[3,4,0]]; epilogue adds the column index.
        assert_eq!(out.as_slice(), &[1, 3, 2, 3, 5, 2]);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(5usize, 40usize, 12usize), (2, 3, 2), (7, 19, 31)] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo(i + 7)).collect(), &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            assert_eq!(
                gemm_i8_i32(&x, &packed, &mut scratch).unwrap(),
                x.matmul_i32(&w).unwrap()
            );
        }
    }

    #[test]
    fn rejects_mismatched_k_and_oversized_k() {
        let x = tensor_i8(vec![0; 6], &[2, 3]);
        let w = tensor_i8(vec![0; 8], &[4, 2]);
        let packed = PackedWeights::pack(&w).unwrap();
        assert!(gemm_i8_i32(&x, &packed, &mut GemmScratch::new()).is_err());
        assert!(PackedWeights::pack(&tensor_i8(vec![0; 3], &[3])).is_err());
    }

    #[test]
    fn scratch_depth_reservation_is_sticky() {
        let mut scratch = GemmScratch::with_depth(64);
        assert!(scratch.depth_capacity() >= 64);
        // Packing a shallower block must not shrink the buffer.
        let x = tensor_i8((0..2 * 3).map(pseudo).collect(), &[2, 3]);
        let w = tensor_i8((0..3 * 2).map(pseudo).collect(), &[3, 2]);
        let packed = PackedWeights::pack(&w).unwrap();
        gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
        assert!(scratch.depth_capacity() >= 64);
        scratch.reserve_depth(16); // no-op below capacity
        assert!(scratch.depth_capacity() >= 64);
        scratch.reserve_depth(128);
        assert!(scratch.depth_capacity() >= 128);
    }

    #[test]
    fn nibble_panels_from_v2_bytes_match_pack_nibble() {
        for &(k, n) in &[(1usize, 1usize), (3, 5), (16, 16), (33, 21), (63, 40)] {
            let codes: Vec<i8> = (0..k * n).map(pseudo4).collect();
            let w = tensor_i8(codes.clone(), &[k, n]);
            let bytes = crate::pack4::pack_i4(&codes).unwrap();
            let from_bytes = PackedWeights::from_v2_nibble_bytes(&bytes, k, n).unwrap();
            assert_eq!(
                from_bytes,
                PackedWeights::pack_nibble(&w).unwrap(),
                "({k},{n})"
            );
            assert!(from_bytes.is_nibble());
        }
    }

    #[test]
    fn wide_panels_from_bytes_match_pack() {
        for &(k, n) in &[(1usize, 1usize), (3, 5), (16, 16), (33, 21)] {
            let codes: Vec<i8> = (0..k * n).map(pseudo).collect();
            let w = tensor_i8(codes.clone(), &[k, n]);
            // fqlint::allow(narrowing-cast): same-width i8 -> u8 test setup.
            let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
            let from_bytes = PackedWeights::pack_wide_from_bytes(&bytes, k, n).unwrap();
            assert_eq!(from_bytes, PackedWeights::pack(&w).unwrap(), "({k},{n})");
        }
    }

    #[test]
    fn from_bytes_constructors_reject_bad_encodings() {
        // Wrong byte counts.
        assert!(PackedWeights::from_v2_nibble_bytes(&[0u8; 3], 2, 2).is_err());
        assert!(PackedWeights::pack_wide_from_bytes(&[0u8; 3], 2, 2).is_err());
        // Odd element count with dirty trailing high nibble.
        assert!(PackedWeights::from_v2_nibble_bytes(&[0x00, 0x10], 1, 3).is_err());
        assert!(PackedWeights::from_v2_nibble_bytes(&[0x00, 0x01], 1, 3).is_ok());
        // Depth beyond MAX_K.
        assert!(PackedWeights::from_v2_nibble_bytes(&vec![0u8; MAX_K + 1], MAX_K + 1, 2).is_err());
    }

    #[test]
    fn requant_epilogue_matches_reference_per_element() {
        let params = RequantParams {
            multiplier: 715_827_883, // ~ 2/3 in Q1.30
            shift: 31,
            clamp: 127,
        };
        assert!(params.simd_exact());
        let reference = |acc: i32, bias: i32| -> i8 {
            let sum = i64::from(acc) + i64::from(bias);
            let product = i128::from(sum) * i128::from(params.multiplier);
            let half = 1i128 << (params.shift - 1);
            let rounded = if product >= 0 {
                (product + half) >> params.shift
            } else {
                -((-product + half) >> params.shift)
            };
            rounded.clamp(-127, 127) as i8
        };
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (9, 33, 21)] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo(i + 99)).collect(), &[k, n]);
            let bias: Vec<i32> = (0..n).map(|c| (c as i32 - 3) * 1000).collect();
            let packed = PackedWeights::pack(&w).unwrap();
            let mut scratch = GemmScratch::new();
            let fused = gemm_i8_requant(&x, &packed, &bias, params, &mut scratch).unwrap();
            let raw = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            for r in 0..m {
                for (c, &b) in bias.iter().enumerate() {
                    assert_eq!(
                        fused.as_slice()[r * n + c],
                        reference(raw.as_slice()[r * n + c], b),
                        "({m},{k},{n}) at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn requant_rejects_mismatched_bias() {
        let x = tensor_i8(vec![1, 2], &[1, 2]);
        let w = tensor_i8(vec![1, 0, 0, 1], &[2, 2]);
        let packed = PackedWeights::pack(&w).unwrap();
        let params = RequantParams {
            multiplier: 1 << 30,
            shift: 30,
            clamp: 127,
        };
        let err = gemm_i8_requant(&x, &packed, &[0], params, &mut GemmScratch::new());
        assert!(err.is_err());
    }

    #[test]
    fn packed_accessors_report_shape() {
        let w = tensor_i8((0..6).map(|i| i as i8).collect(), &[2, 3]);
        let packed = PackedWeights::pack(&w).unwrap();
        assert_eq!(packed.k(), 2);
        assert_eq!(packed.n(), 3);
        assert!(!packed.is_nibble());
    }
}
