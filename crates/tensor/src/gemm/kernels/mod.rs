//! Micro-kernel dispatch: one process-wide selection of the SIMD tile
//! kernels the blocked GEMM runs on.
//!
//! Every kernel computes the same `MR × NR` accumulator tile update from a
//! k-pair-interleaved activation block and weight panel (see the `gemm`
//! module docs for the layouts) and is **bit-identical** to the scalar
//! reference: absent `i32` overflow — excluded by the `MAX_K` pack bound —
//! integer accumulation is exact in any order, so lane-parallel SIMD sums
//! equal the sequential reduction bit for bit. The cross-kernel property
//! tests in `tests/proptest_gemm.rs` pin this for every kernel the host can
//! run.
//!
//! # Selection
//!
//! [`selected`] resolves once per process (lock-free, one relaxed atomic
//! load on the hot path afterwards):
//!
//! 1. If `FQBERT_KERNEL=scalar|sse2|avx2|neon` is set, that kernel is used
//!    when available on this CPU; an unavailable or unrecognised request
//!    falls back to `scalar` (never an error — serving must come up), which
//!    is visible in telemetry/`list_models` since the kernel name is
//!    surfaced everywhere.
//! 2. Otherwise the best available kernel wins: `avx2` > `sse2` on x86_64
//!    (via `is_x86_feature_detected!`), `neon` on aarch64, else `scalar`.
//!
//! Tests and benches switch kernels in-process with [`force`].
//!
//! # Adding a kernel
//!
//! Implement the two tile functions (`wide` for `i16` panels, `nibble` for
//! int4 nibble panels) in a new submodule, add a [`KernelKind`] variant,
//! its availability check, and its [`KernelDispatch`] row — then the
//! cross-kernel proptests automatically cover it. `unsafe` is allowed only
//! inside `gemm/kernels/*` (fqlint R5 `unsafe-outside-kernels`), and every
//! unsafe item there must carry a justified allow annotation.

pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod neon;
#[cfg(target_arch = "x86_64")]
pub mod x86;

use super::{AccTile, RequantParams, WIDE_A, WIDE_B};
use crate::gemm::NR;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tile kernel over wide (`i16`-pair) weight panels.
pub type WideKernel = fn(&[[i16; WIDE_A]], &[[i16; WIDE_B]], &mut AccTile);

/// Tile kernel over nibble-packed (int4) weight panels.
pub type NibbleKernel = fn(&[[i16; WIDE_A]], &[[u8; NR]], &mut AccTile);

/// Requantize epilogue over one accumulator row segment:
/// `out[j] = clamp(round((acc[j] + bias[j]) · multiplier / 2^shift), ±clamp)`
/// with round-half-away-from-zero. SIMD implementations are bit-identical
/// to [`scalar::requant_row`] for parameter sets inside
/// [`RequantParams::simd_exact`]; `gemm_i8_requant` routes anything outside
/// that envelope to the scalar reference.
pub type RequantKernel = fn(&[i32], &[i32], RequantParams, &mut [i8]);

/// The instruction-set families a micro-kernel can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Portable scalar reference kernel (always available).
    Scalar,
    /// x86_64 128-bit `pmaddwd` path.
    Sse2,
    /// x86_64 256-bit `vpmaddwd` path.
    Avx2,
    /// aarch64 128-bit `smlal` path.
    Neon,
}

impl KernelKind {
    /// Every kind, in ascending preference order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Scalar,
        KernelKind::Sse2,
        KernelKind::Avx2,
        KernelKind::Neon,
    ];

    /// The spelling used by `FQBERT_KERNEL` and surfaced in telemetry.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse2 => "sse2",
            KernelKind::Avx2 => "avx2",
            KernelKind::Neon => "neon",
        }
    }

    /// Parses a `FQBERT_KERNEL` value (ASCII case-insensitive).
    pub fn parse(name: &str) -> Option<KernelKind> {
        KernelKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Whether this kernel can run on the current process' CPU.
    pub fn is_available(self) -> bool {
        match self {
            KernelKind::Scalar => true,
            KernelKind::Sse2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("sse2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

/// One selectable micro-kernel pair plus its identity.
#[derive(Debug)]
pub struct KernelDispatch {
    /// Which instruction-set family this is.
    pub kind: KernelKind,
    /// Stable name surfaced in telemetry, wire frames and logs.
    pub name: &'static str,
    /// Tile kernel for wide (`i16`) weight panels.
    pub wide: WideKernel,
    /// Tile kernel for nibble-packed (int4) weight panels.
    pub nibble: NibbleKernel,
    /// Requantize epilogue kernel for accumulator row segments.
    pub requant: RequantKernel,
}

static SCALAR: KernelDispatch = KernelDispatch {
    kind: KernelKind::Scalar,
    name: "scalar",
    wide: scalar::tile_wide,
    nibble: scalar::tile_nibble,
    requant: scalar::requant_row,
};

#[cfg(target_arch = "x86_64")]
static SSE2: KernelDispatch = KernelDispatch {
    kind: KernelKind::Sse2,
    name: "sse2",
    wide: x86::tile_wide_sse2,
    nibble: x86::tile_nibble_sse2,
    requant: x86::requant_row_sse2,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelDispatch = KernelDispatch {
    kind: KernelKind::Avx2,
    name: "avx2",
    wide: x86::tile_wide_avx2,
    nibble: x86::tile_nibble_avx2,
    requant: x86::requant_row_avx2,
};

// The NEON row reuses the scalar requant epilogue: the epilogue is a small
// fraction of GEMM time and the aarch64 SIMD variant has not been written
// yet.
#[cfg(target_arch = "aarch64")]
static NEON: KernelDispatch = KernelDispatch {
    kind: KernelKind::Neon,
    name: "neon",
    wide: neon::tile_wide,
    nibble: neon::tile_nibble,
    requant: scalar::requant_row,
};

/// The dispatch table row for `kind`. Kinds not compiled for this target
/// resolve to the scalar row.
pub fn dispatch_for(kind: KernelKind) -> &'static KernelDispatch {
    match kind {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Sse2 => &SSE2,
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => &AVX2,
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => &NEON,
        _ => &SCALAR,
    }
}

/// Process-wide selection: 0 = not yet resolved, otherwise a `KernelKind`
/// discriminant + 1. Relaxed ordering suffices — every possible stored
/// value is valid and re-resolution is idempotent.
static SELECTED: AtomicUsize = AtomicUsize::new(0);

fn kind_from_index(index: usize) -> KernelKind {
    KernelKind::ALL
        .get(index)
        .copied()
        .unwrap_or(KernelKind::Scalar)
}

/// Pure selection policy, unit-testable: the kernel to use given the
/// `FQBERT_KERNEL` override (if any) and this CPU's capabilities.
pub fn resolve(requested: Option<&str>) -> KernelKind {
    if let Some(name) = requested {
        return match KernelKind::parse(name) {
            Some(kind) if kind.is_available() => kind,
            // Unavailable or unrecognised: serve on scalar rather than
            // fail — the choice is visible wherever the name is surfaced.
            _ => KernelKind::Scalar,
        };
    }
    best_available()
}

/// The fastest kernel this CPU can run.
pub fn best_available() -> KernelKind {
    [KernelKind::Avx2, KernelKind::Neon, KernelKind::Sse2]
        .into_iter()
        .find(|k| k.is_available())
        .unwrap_or(KernelKind::Scalar)
}

/// Every kernel the current process can actually run, scalar first.
pub fn available() -> Vec<KernelKind> {
    KernelKind::ALL
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// The process-selected micro-kernel pair. First call resolves from
/// `FQBERT_KERNEL` / CPU detection; afterwards this is one relaxed atomic
/// load.
pub fn selected() -> &'static KernelDispatch {
    let stored = SELECTED.load(Ordering::Relaxed);
    if stored != 0 {
        return dispatch_for(kind_from_index(stored - 1));
    }
    let kind = resolve(std::env::var("FQBERT_KERNEL").ok().as_deref());
    SELECTED.store(kind as usize + 1, Ordering::Relaxed);
    dispatch_for(kind)
}

/// Forces the process-wide kernel selection (tests, benches, A/B lanes).
/// An unavailable `kind` falls back to scalar; returns what was installed.
pub fn force(kind: KernelKind) -> KernelKind {
    let actual = if kind.is_available() {
        kind
    } else {
        KernelKind::Scalar
    };
    SELECTED.store(actual as usize + 1, Ordering::Relaxed);
    actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
            assert_eq!(KernelKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(KernelKind::parse(" avx2 "), Some(KernelKind::Avx2));
        assert_eq!(KernelKind::parse("avx512"), None);
    }

    #[test]
    fn resolve_honours_requests_and_falls_back_to_scalar() {
        // Scalar is always honoured.
        assert_eq!(resolve(Some("scalar")), KernelKind::Scalar);
        // Garbage falls back to scalar, never errors.
        assert_eq!(resolve(Some("gpu")), KernelKind::Scalar);
        assert_eq!(resolve(Some("")), KernelKind::Scalar);
        // No request: the best available kernel, which must be available.
        assert!(resolve(None).is_available());
        // An explicit request for an available kernel is honoured.
        for kind in available() {
            assert_eq!(resolve(Some(kind.name())), kind);
        }
    }

    #[test]
    fn scalar_is_always_available_and_dispatchable() {
        assert!(KernelKind::Scalar.is_available());
        assert!(available().contains(&KernelKind::Scalar));
        assert_eq!(dispatch_for(KernelKind::Scalar).name, "scalar");
    }

    #[test]
    fn force_installs_available_kernels_and_rejects_missing_ones() {
        for kind in KernelKind::ALL {
            let installed = force(kind);
            if kind.is_available() {
                assert_eq!(installed, kind);
            } else {
                assert_eq!(installed, KernelKind::Scalar);
            }
            assert_eq!(selected().kind, installed);
            assert_eq!(selected().name, installed.name());
        }
        // Leave the default selection behind for other tests in-process.
        force(best_available());
    }
}
