//! aarch64 NEON micro-kernels: `smlal`-shaped widening multiply-accumulate
//! over the k-pair-interleaved panels.
//!
//! Unlike the x86 `pmaddwd` path, NEON de-interleaves the stored weight
//! pairs (`vld2q_s16`) back into a `b0` and a `b1` vector per eight columns
//! and issues two `vmlal_n_s16` per accumulator: `acc += b0·a0` then
//! `acc += b1·a1`. The association differs from the scalar reference's
//! `(a0·b0 + a1·b1)` pair sum, but absent `i32` overflow — excluded by the
//! `MAX_K` pack bound — integer addition is exact and associative, so the
//! result is bit-identical. The int4 path sign-extends nibble panels
//! in-register with an arithmetic `s8` shift pair (`vshl`/`vshr`) before
//! widening.
//!
//! # Safety
//!
//! This module is one of the designated unsafe-kernel modules (fqlint R5
//! `unsafe-outside-kernels`): the only unsafety is calling
//! `#[target_feature(enable = "neon")]` functions — NEON is part of the
//! aarch64 baseline this module is compile-gated to — and SIMD
//! loads/stores through pointers into fixed-size arrays, in-bounds by
//! construction.

use crate::gemm::{AccTile, NR, WIDE_A, WIDE_B};
use core::arch::aarch64::{
    vdupq_n_s32, vget_high_s16, vget_high_s8, vget_low_s16, vget_low_s8, vld1q_s32, vld1q_s8,
    vld2q_s16, vmlal_n_s16, vmovl_s8, vshlq_n_s8, vshrq_n_s8, vst1q_s32,
};

/// NEON tile kernel over wide (`i16`-pair) panels. NEON is baseline on
/// aarch64, so this is always sound to install on this target.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; NEON is
// baseline on aarch64 and the loads/stores are in-bounds by the fixed
// array types.
pub fn tile_wide(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    unsafe { wide_neon(a, b, acc) }
}

/// NEON tile kernel over nibble-packed (int4) panels.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; NEON is
// baseline on aarch64 and the loads/stores are in-bounds by the fixed
// array types.
pub fn tile_nibble(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    unsafe { nibble_neon(a, b, acc) }
}

/// One accumulator row stays resident in eight 128-bit registers while the
/// reduction streams past; `vld2q_s16` de-interleaves each eight-column
/// pair group into `b0`/`b1` vectors for the two widening accumulates.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; NEON is baseline on aarch64.
#[target_feature(enable = "neon")]
unsafe fn wide_neon(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v = [vdupq_n_s32(0); 8];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = vld1q_s32(p.add(4 * i));
        }
        for (ap, bp) in a.iter().zip(b) {
            let a0 = ap[2 * r];
            let a1 = ap[2 * r + 1];
            let bq = bp.as_ptr();
            for i in 0..4 {
                let d = vld2q_s16(bq.add(16 * i));
                v[2 * i] = vmlal_n_s16(v[2 * i], vget_low_s16(d.0), a0);
                v[2 * i] = vmlal_n_s16(v[2 * i], vget_low_s16(d.1), a1);
                v[2 * i + 1] = vmlal_n_s16(v[2 * i + 1], vget_high_s16(d.0), a0);
                v[2 * i + 1] = vmlal_n_s16(v[2 * i + 1], vget_high_s16(d.1), a1);
            }
        }
        for (i, slot) in v.iter().enumerate() {
            vst1q_s32(p.add(4 * i), *slot);
        }
    }
}

/// The int4 direct-compute NEON kernel: 16 nibble-pair bytes per load,
/// low nibbles sign-extended by the `vshl`/`vshr` pair, high nibbles by a
/// single arithmetic right shift, then widened and accumulated like the
/// wide path.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; NEON is baseline on aarch64.
#[target_feature(enable = "neon")]
unsafe fn nibble_neon(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v = [vdupq_n_s32(0); 8];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = vld1q_s32(p.add(4 * i));
        }
        for (ap, bp) in a.iter().zip(b) {
            let a0 = ap[2 * r];
            let a1 = ap[2 * r + 1];
            for half in 0..2 {
                let bytes = vld1q_s8(bp.as_ptr().add(16 * half).cast());
                let lo = vshrq_n_s8::<4>(vshlq_n_s8::<4>(bytes));
                let hi = vshrq_n_s8::<4>(bytes);
                let lo_a = vmovl_s8(vget_low_s8(lo));
                let lo_b = vmovl_s8(vget_high_s8(lo));
                let hi_a = vmovl_s8(vget_low_s8(hi));
                let hi_b = vmovl_s8(vget_high_s8(hi));
                let base = 4 * half;
                v[base] = vmlal_n_s16(v[base], vget_low_s16(lo_a), a0);
                v[base] = vmlal_n_s16(v[base], vget_low_s16(hi_a), a1);
                v[base + 1] = vmlal_n_s16(v[base + 1], vget_high_s16(lo_a), a0);
                v[base + 1] = vmlal_n_s16(v[base + 1], vget_high_s16(hi_a), a1);
                v[base + 2] = vmlal_n_s16(v[base + 2], vget_low_s16(lo_b), a0);
                v[base + 2] = vmlal_n_s16(v[base + 2], vget_low_s16(hi_b), a1);
                v[base + 3] = vmlal_n_s16(v[base + 3], vget_high_s16(lo_b), a0);
                v[base + 3] = vmlal_n_s16(v[base + 3], vget_high_s16(hi_b), a1);
            }
        }
        for (i, slot) in v.iter().enumerate() {
            vst1q_s32(p.add(4 * i), *slot);
        }
    }
}
