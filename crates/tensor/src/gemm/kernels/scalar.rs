//! Portable scalar micro-kernels — the bit-exactness reference every SIMD
//! path is property-tested against, and the fallback when no SIMD kernel is
//! available (or `FQBERT_KERNEL=scalar` forces it).
//!
//! The loops keep the pmaddwd shape: two k-steps at a time, `i16 × i16`
//! products (|i8·i8| ≤ 128² fits `i16`) summed pairwise into the `i32`
//! accumulator — exactly what one `_mm256_madd_epi16` / `smlal` lane
//! computes — so the auto-vectorizer can profitably lower even this
//! reference kernel on the baseline target. All panel rows are fixed-size
//! arrays and `as_chunks` splits them into compile-time-sized pairs, so
//! the hot loop contains no fallible chunking and no panic paths.

use crate::gemm::{AccTile, NR, WIDE_A, WIDE_B};
use crate::pack4::sign_extend;

/// Accumulates one tile from wide (`i16`-pair) panels.
pub fn tile_wide(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (ap, bp) in a.iter().zip(b) {
        let (a_pairs, _) = ap.as_chunks::<2>();
        let (b_pairs, _) = bp.as_chunks::<2>();
        for (pair, row) in a_pairs.iter().zip(acc.iter_mut()) {
            let (a0, a1) = (pair[0], pair[1]);
            for (dst, bw) in row.iter_mut().zip(b_pairs) {
                *dst += i32::from(a0 * bw[0]) + i32::from(a1 * bw[1]);
            }
        }
    }
}

/// Accumulates one tile from nibble-packed (int4) panels, sign-extending
/// each weight nibble on the fly instead of reading pre-widened `i16`s.
pub fn tile_nibble(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    for (ap, bp) in a.iter().zip(b) {
        let (a_pairs, _) = ap.as_chunks::<2>();
        for (pair, row) in a_pairs.iter().zip(acc.iter_mut()) {
            let (a0, a1) = (pair[0], pair[1]);
            for (dst, &byte) in row.iter_mut().zip(bp.iter()) {
                let b0 = i16::from(sign_extend(byte & 0x0f));
                let b1 = i16::from(sign_extend(byte >> 4));
                *dst += i32::from(a0 * b0) + i32::from(a1 * b1);
            }
        }
    }
}
