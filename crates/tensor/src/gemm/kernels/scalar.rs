//! Portable scalar micro-kernels — the bit-exactness reference every SIMD
//! path is property-tested against, and the fallback when no SIMD kernel is
//! available (or `FQBERT_KERNEL=scalar` forces it).
//!
//! The loops keep the pmaddwd shape: two k-steps at a time, `i16 × i16`
//! products (|i8·i8| ≤ 128² fits `i16`) summed pairwise into the `i32`
//! accumulator — exactly what one `_mm256_madd_epi16` / `smlal` lane
//! computes — so the auto-vectorizer can profitably lower even this
//! reference kernel on the baseline target. All panel rows are fixed-size
//! arrays and `as_chunks` splits them into compile-time-sized pairs, so
//! the hot loop contains no fallible chunking and no panic paths.

use crate::gemm::{AccTile, RequantParams, NR, WIDE_A, WIDE_B};
use crate::pack4::sign_extend;

/// Accumulates one tile from wide (`i16`-pair) panels.
pub fn tile_wide(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (ap, bp) in a.iter().zip(b) {
        let (a_pairs, _) = ap.as_chunks::<2>();
        let (b_pairs, _) = bp.as_chunks::<2>();
        for (pair, row) in a_pairs.iter().zip(acc.iter_mut()) {
            let (a0, a1) = (pair[0], pair[1]);
            for (dst, bw) in row.iter_mut().zip(b_pairs) {
                *dst += i32::from(a0 * bw[0]) + i32::from(a1 * bw[1]);
            }
        }
    }
}

/// Requantizes one accumulator row segment: per element,
/// `out = clamp(round((acc + bias) · multiplier / 2^shift), ±min(clamp, 127))`
/// with round-half-away-from-zero, the product formed in 128-bit arithmetic
/// exactly like `fqbert_quant::Requantizer::apply` — this is the
/// bit-exactness reference the SIMD requant kernels are property-tested
/// against, and the fallback for parameters outside the `i64` SIMD envelope
/// (`RequantParams::simd_exact`).
pub fn requant_row(acc: &[i32], bias: &[i32], params: RequantParams, out: &mut [i8]) {
    let bound = i128::from(params.clamp.clamp(0, i32::from(i8::MAX)));
    // A shift of 126 already maps every representable product to 0, so
    // clamping keeps the `1 << (shift - 1)` rounding term in range without
    // changing any output for out-of-envelope parameter sets.
    let shift = params.shift.clamp(0, 126);
    for ((&a, &b), o) in acc.iter().zip(bias).zip(out.iter_mut()) {
        let sum = i64::from(a) + i64::from(b);
        let product = i128::from(sum) * i128::from(params.multiplier);
        let rounded = if shift > 0 {
            let half = 1i128 << (shift - 1);
            if product >= 0 {
                (product + half) >> shift
            } else {
                -((-product + half) >> shift)
            }
        } else {
            product
        };
        // fqlint::allow(narrowing-cast): clamped to ±127 just above.
        *o = rounded.clamp(-bound, bound) as i8;
    }
}

/// Accumulates one tile from nibble-packed (int4) panels, sign-extending
/// each weight nibble on the fly instead of reading pre-widened `i16`s.
pub fn tile_nibble(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    for (ap, bp) in a.iter().zip(b) {
        let (a_pairs, _) = ap.as_chunks::<2>();
        for (pair, row) in a_pairs.iter().zip(acc.iter_mut()) {
            let (a0, a1) = (pair[0], pair[1]);
            for (dst, &byte) in row.iter_mut().zip(bp.iter()) {
                let b0 = i16::from(sign_extend(byte & 0x0f));
                let b1 = i16::from(sign_extend(byte >> 4));
                *dst += i32::from(a0 * b0) + i32::from(a1 * b1);
            }
        }
    }
}
