//! x86_64 micro-kernels: AVX2 (`_mm256_madd_epi16`) and SSE2 (`pmaddwd`)
//! accumulator tiles over the k-pair-interleaved panels.
//!
//! Both paths broadcast one activation pair `(a0, a1)` into every 32-bit
//! lane and `madd` it against the panel's interleaved weight pairs: lane
//! `j` computes `a0·W[2pp][c+j] + a1·W[2pp+1][c+j]` with exact 32-bit
//! intermediate products — the identical value the scalar reference sums
//! for that column, so accumulation is bit-identical (no overflow by the
//! `MAX_K` pack bound). The int4 path loads raw nibble panels and
//! sign-extends in-register with an arithmetic shift pair instead of
//! reading pre-widened `i16`s.
//!
//! # Safety
//!
//! This module is one of the designated unsafe-kernel modules (fqlint R5
//! `unsafe-outside-kernels`): the only unsafety is (a) calling
//! `#[target_feature]` functions, sound because the dispatch table installs
//! them only after `is_x86_feature_detected!` confirms the feature, and
//! (b) unaligned SIMD loads/stores through raw pointers derived from
//! fixed-size array references, in-bounds by construction.

use super::scalar;
use crate::gemm::{AccTile, RequantParams, MR, NR, WIDE_A, WIDE_B};
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256,
    _mm256_castsi256_si128, _mm256_cmpgt_epi32, _mm256_cvtepi32_epi64, _mm256_cvtepu8_epi16,
    _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_mul_epu32,
    _mm256_or_si256, _mm256_permute2x128_si256, _mm256_permute4x64_epi64, _mm256_set1_epi32,
    _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_shuffle_epi32, _mm256_slli_epi16,
    _mm256_slli_epi64, _mm256_srai_epi16, _mm256_srai_epi32, _mm256_srl_epi64, _mm256_srli_epi64,
    _mm256_storeu_si256, _mm256_sub_epi64, _mm256_unpackhi_epi16, _mm256_unpacklo_epi16,
    _mm256_xor_si256, _mm_add_epi32, _mm_add_epi64, _mm_and_si128, _mm_andnot_si128,
    _mm_cmpgt_epi32, _mm_cvtsi128_si32, _mm_cvtsi32_si128, _mm_loadu_si128, _mm_madd_epi16,
    _mm_mul_epu32, _mm_or_si128, _mm_packs_epi16, _mm_packs_epi32, _mm_set1_epi32, _mm_set1_epi64x,
    _mm_setzero_si128, _mm_shuffle_epi32, _mm_slli_epi16, _mm_slli_epi64, _mm_srai_epi16,
    _mm_srai_epi32, _mm_srl_epi64, _mm_srli_epi64, _mm_storel_epi64, _mm_storeu_si128,
    _mm_sub_epi64, _mm_unpackhi_epi16, _mm_unpackhi_epi32, _mm_unpackhi_epi8, _mm_unpacklo_epi16,
    _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_unpacklo_epi8, _mm_xor_si128,
};

/// Row `r`'s activation pair `(a0, a1)` packed into one `i32` lane image:
/// `a0` in bits 0..16, `a1` in bits 16..32 — broadcast by `set1_epi32`,
/// consumed 16 bits at a time by `madd_epi16` (little-endian lane order).
#[inline(always)]
fn pair_lanes(ap: &[i16; WIDE_A], r: usize) -> i32 {
    (i32::from(ap[2 * r + 1]) << 16) | (i32::from(ap[2 * r]) & 0xFFFF)
}

/// AVX2 tile kernel over wide (`i16`-pair) panels.
///
/// Must only be installed in the dispatch table when
/// `is_x86_feature_detected!("avx2")` holds — [`super::dispatch_for`] and
/// [`super::force`] guarantee that.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; the
// target-feature call is guarded by runtime AVX2 detection at dispatch
// installation.
pub fn tile_wide_avx2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    unsafe { wide_avx2(a, b, acc) }
}

/// AVX2 tile kernel over nibble-packed (int4) panels.
///
/// Same installation contract as [`tile_wide_avx2`].
// fqlint::allow(unsafe-outside-kernels): designated kernel module; the
// target-feature call is guarded by runtime AVX2 detection at dispatch
// installation.
pub fn tile_nibble_avx2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    unsafe { nibble_avx2(a, b, acc) }
}

/// SSE2 tile kernel over wide (`i16`-pair) panels. SSE2 is part of the
/// x86_64 baseline, so this is always sound to install on this target.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; SSE2 is
// baseline on x86_64 and the loads/stores are in-bounds by the fixed array
// types.
pub fn tile_wide_sse2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    unsafe { wide_sse2(a, b, acc) }
}

/// SSE2 tile kernel over nibble-packed (int4) panels.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; SSE2 is
// baseline on x86_64 and the loads/stores are in-bounds by the fixed array
// types.
pub fn tile_nibble_sse2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    unsafe { nibble_sse2(a, b, acc) }
}

/// One row of the accumulator tile stays resident in four 256-bit
/// registers while the whole reduction streams past it; the weight panel
/// re-streams once per row (`MR` passes over L1-resident panel bytes).
// fqlint::allow(unsafe-outside-kernels): loads/stores read and write
// `[i16; WIDE_B]` / `[i32; NR]` array interiors at constant offsets that
// the types bound; `target_feature` is guaranteed by the safe wrapper's
// installation contract.
#[target_feature(enable = "avx2")]
unsafe fn wide_avx2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v0 = _mm256_loadu_si256(p.cast());
        let mut v1 = _mm256_loadu_si256(p.add(8).cast());
        let mut v2 = _mm256_loadu_si256(p.add(16).cast());
        let mut v3 = _mm256_loadu_si256(p.add(24).cast());
        for (ap, bp) in a.iter().zip(b) {
            let pair = _mm256_set1_epi32(pair_lanes(ap, r));
            let bq = bp.as_ptr();
            v0 = _mm256_add_epi32(v0, _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.cast())));
            v1 = _mm256_add_epi32(
                v1,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(16).cast())),
            );
            v2 = _mm256_add_epi32(
                v2,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(32).cast())),
            );
            v3 = _mm256_add_epi32(
                v3,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(48).cast())),
            );
        }
        _mm256_storeu_si256(p.cast(), v0);
        _mm256_storeu_si256(p.add(8).cast(), v1);
        _mm256_storeu_si256(p.add(16).cast(), v2);
        _mm256_storeu_si256(p.add(24).cast(), v3);
    }
}

/// Sign-extends 16 nibble-pair bytes (columns `c..c+16`) into two vectors
/// of interleaved `i16` weight pairs: columns `c..c+8` and `c+8..c+16`.
///
/// The zero-extended byte sits in bits 0..8 of each 16-bit lane; shifting
/// left by 12 (resp. 8) parks the low (resp. high) nibble in the top four
/// bits and an arithmetic right shift by 12 sign-extends it. The 256-bit
/// `unpack[lo|hi]_epi16` interleave works per 128-bit half, so a cross-lane
/// permute restores ascending column order.
// fqlint::allow(unsafe-outside-kernels): register-only decode; inherits
// the wrapper-installation contract for AVX2.
#[target_feature(enable = "avx2")]
unsafe fn decode_half_avx2(bytes: __m128i) -> (__m256i, __m256i) {
    let w = _mm256_cvtepu8_epi16(bytes);
    let lo = _mm256_srai_epi16::<12>(_mm256_slli_epi16::<12>(w));
    let hi = _mm256_srai_epi16::<12>(_mm256_slli_epi16::<8>(w));
    let even = _mm256_unpacklo_epi16(lo, hi);
    let odd = _mm256_unpackhi_epi16(lo, hi);
    (
        _mm256_permute2x128_si256::<0x20>(even, odd),
        _mm256_permute2x128_si256::<0x31>(even, odd),
    )
}

/// The int4 direct-compute AVX2 kernel: one 32-byte load per k-pair covers
/// all `NR` columns, the decode runs once and feeds all `MR` rows.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the
// `[u8; NR]` / `[i32; NR]` array types; AVX2 guaranteed by the wrapper's
// installation contract.
#[target_feature(enable = "avx2")]
unsafe fn nibble_avx2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    let mut v = [[_mm256_setzero_si256(); 4]; MR];
    for (row, out) in v.iter_mut().zip(acc.iter()) {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = _mm256_loadu_si256(out.as_ptr().add(8 * i).cast());
        }
    }
    for (ap, bp) in a.iter().zip(b) {
        let bytes = _mm256_loadu_si256(bp.as_ptr().cast());
        let (b0, b1) = decode_half_avx2(_mm256_castsi256_si128(bytes));
        let (b2, b3) = decode_half_avx2(_mm256_extracti128_si256::<1>(bytes));
        for (r, row) in v.iter_mut().enumerate() {
            let pair = _mm256_set1_epi32(pair_lanes(ap, r));
            row[0] = _mm256_add_epi32(row[0], _mm256_madd_epi16(pair, b0));
            row[1] = _mm256_add_epi32(row[1], _mm256_madd_epi16(pair, b1));
            row[2] = _mm256_add_epi32(row[2], _mm256_madd_epi16(pair, b2));
            row[3] = _mm256_add_epi32(row[3], _mm256_madd_epi16(pair, b3));
        }
    }
    for (row, out) in v.iter().zip(acc.iter_mut()) {
        for (i, slot) in row.iter().enumerate() {
            _mm256_storeu_si256(out.as_mut_ptr().add(8 * i).cast(), *slot);
        }
    }
}

/// 128-bit variant of [`wide_avx2`]: eight `pmaddwd` lanes per row.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; SSE2 is baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn wide_sse2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v = [_mm_setzero_si128(); 8];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = _mm_loadu_si128(p.add(4 * i).cast());
        }
        for (ap, bp) in a.iter().zip(b) {
            let pair = _mm_set1_epi32(pair_lanes(ap, r));
            let bq = bp.as_ptr();
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = _mm_add_epi32(
                    *slot,
                    _mm_madd_epi16(pair, _mm_loadu_si128(bq.add(8 * i).cast())),
                );
            }
        }
        for (i, slot) in v.iter().enumerate() {
            _mm_storeu_si128(p.add(4 * i).cast(), *slot);
        }
    }
}

/// SSE2 version of the nibble decode for 16 bytes (columns `c..c+16`):
/// four vectors of four interleaved column pairs each, in ascending column
/// order (128-bit unpacks need no cross-lane fixup).
// fqlint::allow(unsafe-outside-kernels): register-only decode; SSE2 is
// baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn decode_half_sse2(bytes: __m128i) -> [__m128i; 4] {
    let zero = _mm_setzero_si128();
    let w0 = _mm_unpacklo_epi8(bytes, zero);
    let w1 = _mm_unpackhi_epi8(bytes, zero);
    let lo0 = _mm_srai_epi16::<12>(_mm_slli_epi16::<12>(w0));
    let hi0 = _mm_srai_epi16::<12>(_mm_slli_epi16::<8>(w0));
    let lo1 = _mm_srai_epi16::<12>(_mm_slli_epi16::<12>(w1));
    let hi1 = _mm_srai_epi16::<12>(_mm_slli_epi16::<8>(w1));
    [
        _mm_unpacklo_epi16(lo0, hi0),
        _mm_unpackhi_epi16(lo0, hi0),
        _mm_unpacklo_epi16(lo1, hi1),
        _mm_unpackhi_epi16(lo1, hi1),
    ]
}

/// SSE2 requantize epilogue over one accumulator row segment.
///
/// Bit-identical to [`scalar::requant_row`] for parameter sets inside
/// [`RequantParams::simd_exact`] (the caller's contract — `gemm_i8_requant`
/// routes anything else to the scalar reference): with
/// `multiplier ∈ [0, 2^30]` the 64-bit product of `|acc + bias| ≤ 2^32`
/// never exceeds `2^62`, so adding the rounding half (`≤ 2^61`) stays below
/// `2^63` and `i64` arithmetic is exact.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; SSE2 is
// baseline on x86_64 and all loads/stores are bounded by the slice lengths.
pub fn requant_row_sse2(acc: &[i32], bias: &[i32], params: RequantParams, out: &mut [i8]) {
    debug_assert!(params.simd_exact());
    unsafe { requant_sse2(acc, bias, params, out) }
}

/// AVX2 requantize epilogue over one accumulator row segment.
///
/// Same exactness contract as [`requant_row_sse2`]; must only be installed
/// when `is_x86_feature_detected!("avx2")` holds.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; the
// target-feature call is guarded by runtime AVX2 detection at dispatch
// installation.
pub fn requant_row_avx2(acc: &[i32], bias: &[i32], params: RequantParams, out: &mut [i8]) {
    debug_assert!(params.simd_exact());
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    unsafe { requant_avx2(acc, bias, params, out) }
}

/// Requantizes one vector of two non-negative-envelope `i64` sums:
/// multiply by the Q1.30 multiplier on the absolute value (32×32 unsigned
/// partial products — the high dword of `|sum| ≤ 2^32` is 0 or 1), add the
/// rounding half, logical-shift right, clamp against the output bound and
/// re-apply the sign. All lane selects are and/andnot/or masks, so only
/// SSE2 instructions are used (no SSE4.x compares or blends).
// fqlint::allow(unsafe-outside-kernels): register-only arithmetic; SSE2 is
// baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn requant2_sse2(
    sum: __m128i,
    mult: __m128i,
    half: __m128i,
    count: __m128i,
    bound64: __m128i,
    bound_x: __m128i,
    xormin: __m128i,
) -> __m128i {
    // Per-i64-lane sign mask: replicate each lane's high dword, then
    // arithmetic-shift every dword down to its sign.
    let sgn = _mm_srai_epi32::<31>(_mm_shuffle_epi32::<0xF5>(sum));
    let abs = _mm_sub_epi64(_mm_xor_si128(sum, sgn), sgn);
    let prod_lo = _mm_mul_epu32(abs, mult);
    let prod_hi = _mm_mul_epu32(_mm_srli_epi64::<32>(abs), mult);
    let prod = _mm_add_epi64(prod_lo, _mm_slli_epi64::<32>(prod_hi));
    // Round half away from zero on the non-negative product; the logical
    // shift equals the arithmetic one here.
    let rounded = _mm_srl_epi64(_mm_add_epi64(prod, half), count);
    // rounded > bound, as an unsigned per-dword compare against the
    // [bound, 0] dword image of each i64 lane: the high dwords test
    // `hi != 0`, the low dwords `lo >u bound`; OR-ing a dword-swapped copy
    // widens the verdict to the full lane.
    let gt = _mm_cmpgt_epi32(_mm_xor_si128(rounded, xormin), bound_x);
    let over = _mm_or_si128(gt, _mm_shuffle_epi32::<0xB1>(gt));
    let clamped = _mm_or_si128(
        _mm_and_si128(over, bound64),
        _mm_andnot_si128(over, rounded),
    );
    _mm_sub_epi64(_mm_xor_si128(clamped, sgn), sgn)
}

/// SSE2 requantize loop: four accumulators per iteration, scalar tail.
// fqlint::allow(unsafe-outside-kernels): loads/stores stay inside
// `acc`/`bias`/`out` by the `i + 4 <= len` guard; SSE2 is baseline.
#[target_feature(enable = "sse2")]
unsafe fn requant_sse2(acc: &[i32], bias: &[i32], params: RequantParams, out: &mut [i8]) {
    let len = acc.len().min(bias.len()).min(out.len());
    let mult = _mm_set1_epi64x(params.multiplier);
    let half = _mm_set1_epi64x(if params.shift > 0 {
        1i64 << (params.shift - 1)
    } else {
        0
    });
    let count = _mm_cvtsi32_si128(params.shift);
    let bound64 = _mm_set1_epi64x(i64::from(params.clamp));
    let xormin = _mm_set1_epi32(i32::MIN);
    let bound_x = _mm_xor_si128(bound64, xormin);
    let mut i = 0;
    while i + 4 <= len {
        let v = _mm_loadu_si128(acc.as_ptr().add(i).cast());
        let bv = _mm_loadu_si128(bias.as_ptr().add(i).cast());
        // Sign-extend both i32 quads to i64 pairs and add.
        let vs = _mm_srai_epi32::<31>(v);
        let bs = _mm_srai_epi32::<31>(bv);
        let sum_lo = _mm_add_epi64(_mm_unpacklo_epi32(v, vs), _mm_unpacklo_epi32(bv, bs));
        let sum_hi = _mm_add_epi64(_mm_unpackhi_epi32(v, vs), _mm_unpackhi_epi32(bv, bs));
        let r_lo = requant2_sse2(sum_lo, mult, half, count, bound64, bound_x, xormin);
        let r_hi = requant2_sse2(sum_hi, mult, half, count, bound64, bound_x, xormin);
        // Narrow the four i64 results (each in [-127, 127]) back to i32,
        // then saturating-pack to i8 — exact for this range.
        let lo32 = _mm_shuffle_epi32::<0x88>(r_lo);
        let hi32 = _mm_shuffle_epi32::<0x88>(r_hi);
        let res = _mm_unpacklo_epi64(lo32, hi32);
        let packed = _mm_packs_epi16(_mm_packs_epi32(res, res), _mm_setzero_si128());
        out.as_mut_ptr()
            .add(i)
            .cast::<i32>()
            .write_unaligned(_mm_cvtsi128_si32(packed));
        i += 4;
    }
    scalar::requant_row(&acc[i..len], &bias[i..len], params, &mut out[i..len]);
}

/// 256-bit variant of [`requant2_sse2`]: four i64 lanes per call.
// fqlint::allow(unsafe-outside-kernels): register-only arithmetic;
// inherits the wrapper-installation contract for AVX2.
#[target_feature(enable = "avx2")]
unsafe fn requant4_avx2(
    sum: __m256i,
    mult: __m256i,
    half: __m256i,
    count: __m128i,
    bound64: __m256i,
    bound_x: __m256i,
    xormin: __m256i,
) -> __m256i {
    let sgn = _mm256_srai_epi32::<31>(_mm256_shuffle_epi32::<0xF5>(sum));
    let abs = _mm256_sub_epi64(_mm256_xor_si256(sum, sgn), sgn);
    let prod_lo = _mm256_mul_epu32(abs, mult);
    let prod_hi = _mm256_mul_epu32(_mm256_srli_epi64::<32>(abs), mult);
    let prod = _mm256_add_epi64(prod_lo, _mm256_slli_epi64::<32>(prod_hi));
    let rounded = _mm256_srl_epi64(_mm256_add_epi64(prod, half), count);
    let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(rounded, xormin), bound_x);
    let over = _mm256_or_si256(gt, _mm256_shuffle_epi32::<0xB1>(gt));
    let clamped = _mm256_or_si256(
        _mm256_and_si256(over, bound64),
        _mm256_andnot_si256(over, rounded),
    );
    _mm256_sub_epi64(_mm256_xor_si256(clamped, sgn), sgn)
}

/// AVX2 requantize loop: eight accumulators per iteration, scalar tail.
// fqlint::allow(unsafe-outside-kernels): loads/stores stay inside
// `acc`/`bias`/`out` by the `i + 8 <= len` guard; AVX2 guaranteed by the
// wrapper's installation contract.
#[target_feature(enable = "avx2")]
unsafe fn requant_avx2(acc: &[i32], bias: &[i32], params: RequantParams, out: &mut [i8]) {
    let len = acc.len().min(bias.len()).min(out.len());
    let mult = _mm256_set1_epi64x(params.multiplier);
    let half = _mm256_set1_epi64x(if params.shift > 0 {
        1i64 << (params.shift - 1)
    } else {
        0
    });
    let count = _mm_cvtsi32_si128(params.shift);
    let bound64 = _mm256_set1_epi64x(i64::from(params.clamp));
    let xormin = _mm256_set1_epi32(i32::MIN);
    let bound_x = _mm256_xor_si256(bound64, xormin);
    let mut i = 0;
    while i + 8 <= len {
        let v = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
        let bv = _mm256_loadu_si256(bias.as_ptr().add(i).cast());
        let sum_lo = _mm256_add_epi64(
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)),
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(bv)),
        );
        let sum_hi = _mm256_add_epi64(
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(v)),
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(bv)),
        );
        let r_lo = requant4_avx2(sum_lo, mult, half, count, bound64, bound_x, xormin);
        let r_hi = requant4_avx2(sum_hi, mult, half, count, bound64, bound_x, xormin);
        // Per-lane dword gather of the low halves, cross-lane permute to
        // drop them into the bottom 128 bits in ascending element order.
        let lo32 = _mm256_castsi256_si128(_mm256_permute4x64_epi64::<0x08>(
            _mm256_shuffle_epi32::<0x88>(r_lo),
        ));
        let hi32 = _mm256_castsi256_si128(_mm256_permute4x64_epi64::<0x08>(
            _mm256_shuffle_epi32::<0x88>(r_hi),
        ));
        let packed = _mm_packs_epi16(_mm_packs_epi32(lo32, hi32), _mm_setzero_si128());
        _mm_storel_epi64(out.as_mut_ptr().add(i).cast(), packed);
        i += 8;
    }
    scalar::requant_row(&acc[i..len], &bias[i..len], params, &mut out[i..len]);
}

/// The int4 direct-compute SSE2 kernel.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; SSE2 is baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn nibble_sse2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    let mut v = [[_mm_setzero_si128(); 8]; MR];
    for (row, out) in v.iter_mut().zip(acc.iter()) {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = _mm_loadu_si128(out.as_ptr().add(4 * i).cast());
        }
    }
    for (ap, bp) in a.iter().zip(b) {
        let d0 = decode_half_sse2(_mm_loadu_si128(bp.as_ptr().cast()));
        let d1 = decode_half_sse2(_mm_loadu_si128(bp.as_ptr().add(16).cast()));
        for (r, row) in v.iter_mut().enumerate() {
            let pair = _mm_set1_epi32(pair_lanes(ap, r));
            for (slot, bvec) in row.iter_mut().zip(d0.iter().chain(d1.iter())) {
                *slot = _mm_add_epi32(*slot, _mm_madd_epi16(pair, *bvec));
            }
        }
    }
    for (row, out) in v.iter().zip(acc.iter_mut()) {
        for (i, slot) in row.iter().enumerate() {
            _mm_storeu_si128(out.as_mut_ptr().add(4 * i).cast(), *slot);
        }
    }
}
