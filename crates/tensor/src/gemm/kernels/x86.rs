//! x86_64 micro-kernels: AVX2 (`_mm256_madd_epi16`) and SSE2 (`pmaddwd`)
//! accumulator tiles over the k-pair-interleaved panels.
//!
//! Both paths broadcast one activation pair `(a0, a1)` into every 32-bit
//! lane and `madd` it against the panel's interleaved weight pairs: lane
//! `j` computes `a0·W[2pp][c+j] + a1·W[2pp+1][c+j]` with exact 32-bit
//! intermediate products — the identical value the scalar reference sums
//! for that column, so accumulation is bit-identical (no overflow by the
//! `MAX_K` pack bound). The int4 path loads raw nibble panels and
//! sign-extends in-register with an arithmetic shift pair instead of
//! reading pre-widened `i16`s.
//!
//! # Safety
//!
//! This module is one of the designated unsafe-kernel modules (fqlint R5
//! `unsafe-outside-kernels`): the only unsafety is (a) calling
//! `#[target_feature]` functions, sound because the dispatch table installs
//! them only after `is_x86_feature_detected!` confirms the feature, and
//! (b) unaligned SIMD loads/stores through raw pointers derived from
//! fixed-size array references, in-bounds by construction.

use crate::gemm::{AccTile, MR, NR, WIDE_A, WIDE_B};
use core::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepu8_epi16,
    _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_permute2x128_si256,
    _mm256_set1_epi32, _mm256_setzero_si256, _mm256_slli_epi16, _mm256_srai_epi16,
    _mm256_storeu_si256, _mm256_unpackhi_epi16, _mm256_unpacklo_epi16, _mm_add_epi32,
    _mm_loadu_si128, _mm_madd_epi16, _mm_set1_epi32, _mm_setzero_si128, _mm_slli_epi16,
    _mm_srai_epi16, _mm_storeu_si128, _mm_unpackhi_epi16, _mm_unpackhi_epi8, _mm_unpacklo_epi16,
    _mm_unpacklo_epi8,
};

/// Row `r`'s activation pair `(a0, a1)` packed into one `i32` lane image:
/// `a0` in bits 0..16, `a1` in bits 16..32 — broadcast by `set1_epi32`,
/// consumed 16 bits at a time by `madd_epi16` (little-endian lane order).
#[inline(always)]
fn pair_lanes(ap: &[i16; WIDE_A], r: usize) -> i32 {
    (i32::from(ap[2 * r + 1]) << 16) | (i32::from(ap[2 * r]) & 0xFFFF)
}

/// AVX2 tile kernel over wide (`i16`-pair) panels.
///
/// Must only be installed in the dispatch table when
/// `is_x86_feature_detected!("avx2")` holds — [`super::dispatch_for`] and
/// [`super::force`] guarantee that.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; the
// target-feature call is guarded by runtime AVX2 detection at dispatch
// installation.
pub fn tile_wide_avx2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    unsafe { wide_avx2(a, b, acc) }
}

/// AVX2 tile kernel over nibble-packed (int4) panels.
///
/// Same installation contract as [`tile_wide_avx2`].
// fqlint::allow(unsafe-outside-kernels): designated kernel module; the
// target-feature call is guarded by runtime AVX2 detection at dispatch
// installation.
pub fn tile_nibble_avx2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    unsafe { nibble_avx2(a, b, acc) }
}

/// SSE2 tile kernel over wide (`i16`-pair) panels. SSE2 is part of the
/// x86_64 baseline, so this is always sound to install on this target.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; SSE2 is
// baseline on x86_64 and the loads/stores are in-bounds by the fixed array
// types.
pub fn tile_wide_sse2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    unsafe { wide_sse2(a, b, acc) }
}

/// SSE2 tile kernel over nibble-packed (int4) panels.
// fqlint::allow(unsafe-outside-kernels): designated kernel module; SSE2 is
// baseline on x86_64 and the loads/stores are in-bounds by the fixed array
// types.
pub fn tile_nibble_sse2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    unsafe { nibble_sse2(a, b, acc) }
}

/// One row of the accumulator tile stays resident in four 256-bit
/// registers while the whole reduction streams past it; the weight panel
/// re-streams once per row (`MR` passes over L1-resident panel bytes).
// fqlint::allow(unsafe-outside-kernels): loads/stores read and write
// `[i16; WIDE_B]` / `[i32; NR]` array interiors at constant offsets that
// the types bound; `target_feature` is guaranteed by the safe wrapper's
// installation contract.
#[target_feature(enable = "avx2")]
unsafe fn wide_avx2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v0 = _mm256_loadu_si256(p.cast());
        let mut v1 = _mm256_loadu_si256(p.add(8).cast());
        let mut v2 = _mm256_loadu_si256(p.add(16).cast());
        let mut v3 = _mm256_loadu_si256(p.add(24).cast());
        for (ap, bp) in a.iter().zip(b) {
            let pair = _mm256_set1_epi32(pair_lanes(ap, r));
            let bq = bp.as_ptr();
            v0 = _mm256_add_epi32(v0, _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.cast())));
            v1 = _mm256_add_epi32(
                v1,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(16).cast())),
            );
            v2 = _mm256_add_epi32(
                v2,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(32).cast())),
            );
            v3 = _mm256_add_epi32(
                v3,
                _mm256_madd_epi16(pair, _mm256_loadu_si256(bq.add(48).cast())),
            );
        }
        _mm256_storeu_si256(p.cast(), v0);
        _mm256_storeu_si256(p.add(8).cast(), v1);
        _mm256_storeu_si256(p.add(16).cast(), v2);
        _mm256_storeu_si256(p.add(24).cast(), v3);
    }
}

/// Sign-extends 16 nibble-pair bytes (columns `c..c+16`) into two vectors
/// of interleaved `i16` weight pairs: columns `c..c+8` and `c+8..c+16`.
///
/// The zero-extended byte sits in bits 0..8 of each 16-bit lane; shifting
/// left by 12 (resp. 8) parks the low (resp. high) nibble in the top four
/// bits and an arithmetic right shift by 12 sign-extends it. The 256-bit
/// `unpack[lo|hi]_epi16` interleave works per 128-bit half, so a cross-lane
/// permute restores ascending column order.
// fqlint::allow(unsafe-outside-kernels): register-only decode; inherits
// the wrapper-installation contract for AVX2.
#[target_feature(enable = "avx2")]
unsafe fn decode_half_avx2(bytes: __m128i) -> (__m256i, __m256i) {
    let w = _mm256_cvtepu8_epi16(bytes);
    let lo = _mm256_srai_epi16::<12>(_mm256_slli_epi16::<12>(w));
    let hi = _mm256_srai_epi16::<12>(_mm256_slli_epi16::<8>(w));
    let even = _mm256_unpacklo_epi16(lo, hi);
    let odd = _mm256_unpackhi_epi16(lo, hi);
    (
        _mm256_permute2x128_si256::<0x20>(even, odd),
        _mm256_permute2x128_si256::<0x31>(even, odd),
    )
}

/// The int4 direct-compute AVX2 kernel: one 32-byte load per k-pair covers
/// all `NR` columns, the decode runs once and feeds all `MR` rows.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the
// `[u8; NR]` / `[i32; NR]` array types; AVX2 guaranteed by the wrapper's
// installation contract.
#[target_feature(enable = "avx2")]
unsafe fn nibble_avx2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    let mut v = [[_mm256_setzero_si256(); 4]; MR];
    for (row, out) in v.iter_mut().zip(acc.iter()) {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = _mm256_loadu_si256(out.as_ptr().add(8 * i).cast());
        }
    }
    for (ap, bp) in a.iter().zip(b) {
        let bytes = _mm256_loadu_si256(bp.as_ptr().cast());
        let (b0, b1) = decode_half_avx2(_mm256_castsi256_si128(bytes));
        let (b2, b3) = decode_half_avx2(_mm256_extracti128_si256::<1>(bytes));
        for (r, row) in v.iter_mut().enumerate() {
            let pair = _mm256_set1_epi32(pair_lanes(ap, r));
            row[0] = _mm256_add_epi32(row[0], _mm256_madd_epi16(pair, b0));
            row[1] = _mm256_add_epi32(row[1], _mm256_madd_epi16(pair, b1));
            row[2] = _mm256_add_epi32(row[2], _mm256_madd_epi16(pair, b2));
            row[3] = _mm256_add_epi32(row[3], _mm256_madd_epi16(pair, b3));
        }
    }
    for (row, out) in v.iter().zip(acc.iter_mut()) {
        for (i, slot) in row.iter().enumerate() {
            _mm256_storeu_si256(out.as_mut_ptr().add(8 * i).cast(), *slot);
        }
    }
}

/// 128-bit variant of [`wide_avx2`]: eight `pmaddwd` lanes per row.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; SSE2 is baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn wide_sse2(a: &[[i16; WIDE_A]], b: &[[i16; WIDE_B]], acc: &mut AccTile) {
    for (r, out) in acc.iter_mut().enumerate() {
        let p = out.as_mut_ptr();
        let mut v = [_mm_setzero_si128(); 8];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = _mm_loadu_si128(p.add(4 * i).cast());
        }
        for (ap, bp) in a.iter().zip(b) {
            let pair = _mm_set1_epi32(pair_lanes(ap, r));
            let bq = bp.as_ptr();
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = _mm_add_epi32(
                    *slot,
                    _mm_madd_epi16(pair, _mm_loadu_si128(bq.add(8 * i).cast())),
                );
            }
        }
        for (i, slot) in v.iter().enumerate() {
            _mm_storeu_si128(p.add(4 * i).cast(), *slot);
        }
    }
}

/// SSE2 version of the nibble decode for 16 bytes (columns `c..c+16`):
/// four vectors of four interleaved column pairs each, in ascending column
/// order (128-bit unpacks need no cross-lane fixup).
// fqlint::allow(unsafe-outside-kernels): register-only decode; SSE2 is
// baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn decode_half_sse2(bytes: __m128i) -> [__m128i; 4] {
    let zero = _mm_setzero_si128();
    let w0 = _mm_unpacklo_epi8(bytes, zero);
    let w1 = _mm_unpackhi_epi8(bytes, zero);
    let lo0 = _mm_srai_epi16::<12>(_mm_slli_epi16::<12>(w0));
    let hi0 = _mm_srai_epi16::<12>(_mm_slli_epi16::<8>(w0));
    let lo1 = _mm_srai_epi16::<12>(_mm_slli_epi16::<12>(w1));
    let hi1 = _mm_srai_epi16::<12>(_mm_slli_epi16::<8>(w1));
    [
        _mm_unpacklo_epi16(lo0, hi0),
        _mm_unpackhi_epi16(lo0, hi0),
        _mm_unpacklo_epi16(lo1, hi1),
        _mm_unpackhi_epi16(lo1, hi1),
    ]
}

/// The int4 direct-compute SSE2 kernel.
// fqlint::allow(unsafe-outside-kernels): loads/stores bounded by the fixed
// array types; SSE2 is baseline on x86_64.
#[target_feature(enable = "sse2")]
unsafe fn nibble_sse2(a: &[[i16; WIDE_A]], b: &[[u8; NR]], acc: &mut AccTile) {
    let mut v = [[_mm_setzero_si128(); 8]; MR];
    for (row, out) in v.iter_mut().zip(acc.iter()) {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = _mm_loadu_si128(out.as_ptr().add(4 * i).cast());
        }
    }
    for (ap, bp) in a.iter().zip(b) {
        let d0 = decode_half_sse2(_mm_loadu_si128(bp.as_ptr().cast()));
        let d1 = decode_half_sse2(_mm_loadu_si128(bp.as_ptr().add(16).cast()));
        for (r, row) in v.iter_mut().enumerate() {
            let pair = _mm_set1_epi32(pair_lanes(ap, r));
            for (slot, bvec) in row.iter_mut().zip(d0.iter().chain(d1.iter())) {
                *slot = _mm_add_epi32(*slot, _mm_madd_epi16(pair, *bvec));
            }
        }
    }
    for (row, out) in v.iter().zip(acc.iter_mut()) {
        for (i, slot) in row.iter().enumerate() {
            _mm_storeu_si128(out.as_mut_ptr().add(4 * i).cast(), *slot);
        }
    }
}
