//! Blocked, cache-friendly int8 GEMM with packed weights and a fused
//! epilogue — the software hot path behind every integer linear projection
//! (Q/K/V, attention output, FFN1/FFN2).
//!
//! # Packed layout
//!
//! A weight matrix `W` of shape `[k, n]` (row-major `[in, out]`, as stored by
//! `IntLinear`) is packed **once**, at layer construction or artifact-load
//! time, into column panels of width [`NR`]:
//!
//! ```text
//! panel p  (columns p·NR .. p·NR+NR, zero-padded past n):
//!     data[(p·k + kk)·NR + j] = W[kk][p·NR + j]
//! ```
//!
//! i.e. each panel is k-major, so the micro-kernel streams both the packed
//! activations and the packed weights sequentially. Both sides are stored
//! pre-widened to `i16` — the kernel's multiply operand width — so no
//! sign-extension happens in the hot loop (weights pay the 2× memory once
//! per layer; the activation block lives in the reused scratch). Activations are packed
//! per call into row blocks of height [`MR`], interleaved k-major
//! (`a_panel[kk·MR + r] = X[r0 + r][kk]`), inside a caller-provided
//! [`GemmScratch`] that is reused across layers instead of re-allocated per
//! projection. The micro-kernel keeps an `MR × NR` tile of `i32`
//! accumulators in registers and hands each finished accumulator to the
//! epilogue (bias add + requantization, fused — no `i32` intermediate tensor
//! is ever materialised).
//!
//! # Bit-exactness contract
//!
//! For every output element the reduction runs over `kk = 0, 1, …, k-1` in
//! ascending order, exactly like the naive
//! [`IntTensor::matmul_i32`] triple loop. The naive loop saturates the `i32`
//! accumulator after every partial product while this kernel accumulates
//! without saturation; for `i8` operands the two are nevertheless
//! bit-identical because `|a·w| ≤ 128²` bounds every partial sum by
//! `k · 128²`, which stays inside `i32` for all `k ≤` [`MAX_K`] — packing
//! rejects larger `k`. The property tests in `tests/proptest_gemm.rs` pin
//! this equivalence across random shapes (including empty matrices,
//! non-multiple-of-block dimensions and int4-range weights).

use crate::{IntTensor, Result, TensorError};

/// Width (output columns) of one packed weight panel and of the micro-kernel
/// accumulator tile.
pub const NR: usize = 32;

/// Height (input rows) of one packed activation block and of the
/// micro-kernel accumulator tile.
pub const MR: usize = 4;

/// Largest reduction depth for which unsaturated `i32` accumulation of
/// int8×int8 products cannot overflow (`k · 128² ≤ 2³¹ - 1`, using the
/// worst-case product `(-128)·(-128)`), and therefore the largest `k`
/// [`PackedWeights::pack`] accepts.
pub const MAX_K: usize = i32::MAX as usize / (128 * 128);

/// An int8 weight matrix re-laid-out into [`NR`]-wide, k-major column panels
/// (see the module docs). Built once per layer; read-only afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    /// Panel-major data, `panels · k · NR` elements, zero-padded past `n`.
    /// Stored pre-widened to `i16` — the micro-kernel's multiply operand
    /// width — so the hot loop never re-widens weight bytes.
    data: Vec<i16>,
    k: usize,
    n: usize,
}

impl PackedWeights {
    /// Packs a `[k, n]` row-major weight matrix into column panels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `weight` is not rank 2 and
    /// [`TensorError::ShapeMismatch`] if `k` exceeds [`MAX_K`] (the depth
    /// beyond which unsaturated `i32` accumulation could overflow and the
    /// bit-exactness contract with `matmul_i32` would break).
    pub fn pack(weight: &IntTensor<i8>) -> Result<Self> {
        let (k, n) = weight.as_matrix_dims()?;
        if k > MAX_K {
            return Err(TensorError::ShapeMismatch {
                op: "gemm_pack (k exceeds MAX_K)",
                lhs: weight.dims().to_vec(),
                rhs: vec![MAX_K, n],
            });
        }
        let panels = n.div_ceil(NR);
        let mut data = vec![0i16; panels * k * NR];
        let src = weight.as_slice();
        for p in 0..panels {
            let c0 = p * NR;
            let width = NR.min(n - c0);
            let panel = &mut data[p * k * NR..(p + 1) * k * NR];
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                for (d, &s) in dst[..width].iter_mut().zip(&src[kk * n + c0..]) {
                    *d = i16::from(s);
                }
            }
        }
        Ok(Self { data, k, n })
    }

    /// Reduction depth (input features) of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The k-major data of panel `p`.
    fn panel(&self, p: usize) -> &[i16] {
        &self.data[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// Reusable packing buffer for the activation side of the GEMM.
///
/// One scratch serves every projection of every encoder layer in a forward
/// pass; reusing it avoids an allocation per GEMM (12 layers × 6 projections
/// per batch).
#[derive(Debug, Default)]
pub struct GemmScratch {
    a_block: Vec<i16>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch whose packing buffer is already sized for
    /// reduction depths up to `k`, so the first GEMM through it allocates
    /// nothing. Long-lived owners (e.g. a worker thread that keeps one
    /// scratch across every batch it serves) size it once for the deepest
    /// projection of their model.
    pub fn with_depth(k: usize) -> Self {
        let mut scratch = Self::default();
        scratch.reserve_depth(k);
        scratch
    }

    /// Grows the packing buffer to hold an activation block of reduction
    /// depth `k` (no-op when already large enough). The buffer never
    /// shrinks, so a scratch reused across layers settles at the deepest
    /// projection and stays allocation-free from then on.
    pub fn reserve_depth(&mut self, k: usize) {
        let need = k * MR;
        if self.a_block.capacity() < need {
            self.a_block.reserve(need - self.a_block.len());
        }
    }

    /// Largest reduction depth the current buffer can pack without
    /// reallocating.
    pub fn depth_capacity(&self) -> usize {
        self.a_block.capacity() / MR
    }

    /// Packs rows `r0 .. r0+rows` of `x` (row-major, `k` columns) into the
    /// interleaved `[kk][r]` layout, widening to the kernel's `i16` operand
    /// width and zero-padding missing rows up to [`MR`].
    fn pack_rows(&mut self, x: &[i8], k: usize, r0: usize, rows: usize) -> &[i16] {
        self.a_block.clear();
        self.a_block.resize(k * MR, 0);
        for r in 0..rows {
            let src = &x[(r0 + r) * k..(r0 + r + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                self.a_block[kk * MR + r] = i16::from(v);
            }
        }
        &self.a_block
    }
}

/// Computes the `MR × NR` accumulator tile for one (row block, panel) pair.
///
/// `a_block` is `[kk][r]` interleaved, `b_panel` is `[kk][j]` interleaved;
/// both are pre-widened to `i16` at pack time and streamed sequentially,
/// the tile stays in registers. The reduction steps over `k` two at a time
/// with 16-bit products (`|i8·i8| ≤ 128²` fits `i16`, and a pair of such
/// products fits `i32`), the exact shape of the SSE2 `pmaddwd` / NEON
/// `smlal` multiply-accumulate idiom, so the compiler can vectorize it on
/// the baseline target; viewing the weight pair through fixed-size `[i16;
/// NR]` array refs gives the auto-vectorizer constant trip counts. Absent
/// `i32` overflow — guaranteed by the [`MAX_K`] bound — the pairing leaves
/// every accumulator bit-identical to the strictly sequential reduction.
#[inline]
fn micro_kernel(a_block: &[i16], b_panel: &[i16], acc: &mut [[i32; NR]; MR]) {
    let mut a_pairs = a_block.chunks_exact(2 * MR);
    let mut b_pairs = b_panel.chunks_exact(2 * NR);
    for (a, b) in (&mut a_pairs).zip(&mut b_pairs) {
        let (b0, b1) = b.split_at(NR);
        let bw0: &[i16; NR] = b0.try_into().expect("split_at(NR) is NR wide");
        let bw1: &[i16; NR] = b1.try_into().expect("chunk is 2*NR wide");
        let (a0, a1) = a.split_at(MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av0 = a0[r];
            let av1 = a1[r];
            for (j, dst) in row.iter_mut().enumerate() {
                *dst += i32::from(av0 * bw0[j]) + i32::from(av1 * bw1[j]);
            }
        }
    }
    // Odd-k tail: at most one remaining depth step.
    for (a, b) in a_pairs
        .remainder()
        .chunks_exact(MR)
        .zip(b_pairs.remainder().chunks_exact(NR))
    {
        let bw: &[i16; NR] = b.try_into().expect("chunk is NR wide");
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[r];
            for (j, dst) in row.iter_mut().enumerate() {
                *dst += i32::from(av * bw[j]);
            }
        }
    }
}

/// Drives the blocked GEMM `x (m×k) · W (k×n)` and feeds every finished
/// accumulator to `sink(row, col, acc)` in row-block/panel order.
fn gemm_drive<F: FnMut(usize, usize, i32)>(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
    mut sink: F,
) -> Result<(usize, usize)> {
    let (m, k) = x.as_matrix_dims()?;
    if k != weights.k {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_i8",
            lhs: x.dims().to_vec(),
            rhs: vec![weights.k, weights.n],
        });
    }
    let n = weights.n;
    let panels = n.div_ceil(NR);
    let xs = x.as_slice();
    for r0 in (0..m).step_by(MR) {
        let rows = MR.min(m - r0);
        scratch.pack_rows(xs, k, r0, rows);
        for p in 0..panels {
            let c0 = p * NR;
            let cols = NR.min(n - c0);
            let mut acc = [[0i32; NR]; MR];
            micro_kernel(&scratch.a_block, weights.panel(p), &mut acc);
            for (r, row) in acc.iter().enumerate().take(rows) {
                for (j, &v) in row.iter().enumerate().take(cols) {
                    sink(r0 + r, c0 + j, v);
                }
            }
        }
    }
    Ok((m, n))
}

/// Blocked GEMM returning the raw `i32` accumulators,
/// bit-identical to [`IntTensor::matmul_i32`] (see the module docs for the
/// contract). Mostly useful for tests and diagnostics — the engine uses the
/// fused [`gemm_i8_fused`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x`'s width differs from the
/// packed `k`, or a rank error for non-matrix inputs.
pub fn gemm_i8_i32(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
) -> Result<IntTensor<i32>> {
    let mut out = IntTensor::<i32>::zeros(&[x.as_matrix_dims()?.0, weights.n]);
    let n = weights.n;
    {
        let slice = out.as_mut_slice();
        gemm_drive(x, weights, scratch, |r, c, acc| slice[r * n + c] = acc)?;
    }
    Ok(out)
}

/// Blocked GEMM with a fused epilogue: every `i32` accumulator is mapped to
/// an output `i8` code by `epilogue(acc, col)` — typically bias add plus
/// fixed-point requantization — without materialising an intermediate `i32`
/// tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x`'s width differs from the
/// packed `k`, or a rank error for non-matrix inputs.
pub fn gemm_i8_fused<F: Fn(i32, usize) -> i8>(
    x: &IntTensor<i8>,
    weights: &PackedWeights,
    scratch: &mut GemmScratch,
    epilogue: F,
) -> Result<IntTensor<i8>> {
    let mut out = IntTensor::<i8>::zeros(&[x.as_matrix_dims()?.0, weights.n]);
    let n = weights.n;
    {
        let slice = out.as_mut_slice();
        gemm_drive(x, weights, scratch, |r, c, acc| {
            slice[r * n + c] = epilogue(acc, c);
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_i8(data: Vec<i8>, dims: &[usize]) -> IntTensor<i8> {
        IntTensor::from_vec(data, dims).expect("shape")
    }

    fn pseudo(i: usize) -> i8 {
        (((i as i64 * 2654435761) >> 7) % 255 - 127) as i8
    }

    #[test]
    fn matches_naive_matmul_on_non_block_multiple_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (9, 33, 21),
        ] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo(i + 99)).collect(), &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            let mut scratch = GemmScratch::new();
            let blocked = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            let naive = x.matmul_i32(&w).unwrap();
            assert_eq!(blocked, naive, "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn empty_matrices_produce_empty_outputs() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(0usize, 4usize, 4usize), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let x = tensor_i8(vec![0; m * k], &[m, k]);
            let w = tensor_i8(vec![0; k * n], &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            let blocked = gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
            assert_eq!(blocked, x.matmul_i32(&w).unwrap(), "({m},{k},{n})");
            assert_eq!(blocked.dims(), &[m, n]);
        }
    }

    #[test]
    fn fused_epilogue_sees_column_indices() {
        let x = tensor_i8(vec![1, 2, 3, 4], &[2, 2]);
        let w = tensor_i8(vec![1, 0, 0, 0, 1, 0], &[2, 3]);
        let packed = PackedWeights::pack(&w).unwrap();
        let mut scratch = GemmScratch::new();
        let out = gemm_i8_fused(&x, &packed, &mut scratch, |acc, c| {
            (acc + c as i32).clamp(-128, 127) as i8
        })
        .unwrap();
        // x·w = [[1,2,0],[3,4,0]]; epilogue adds the column index.
        assert_eq!(out.as_slice(), &[1, 3, 2, 3, 5, 2]);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(5usize, 40usize, 12usize), (2, 3, 2), (7, 19, 31)] {
            let x = tensor_i8((0..m * k).map(pseudo).collect(), &[m, k]);
            let w = tensor_i8((0..k * n).map(|i| pseudo(i + 7)).collect(), &[k, n]);
            let packed = PackedWeights::pack(&w).unwrap();
            assert_eq!(
                gemm_i8_i32(&x, &packed, &mut scratch).unwrap(),
                x.matmul_i32(&w).unwrap()
            );
        }
    }

    #[test]
    fn rejects_mismatched_k_and_oversized_k() {
        let x = tensor_i8(vec![0; 6], &[2, 3]);
        let w = tensor_i8(vec![0; 8], &[4, 2]);
        let packed = PackedWeights::pack(&w).unwrap();
        assert!(gemm_i8_i32(&x, &packed, &mut GemmScratch::new()).is_err());
        assert!(PackedWeights::pack(&tensor_i8(vec![0; 3], &[3])).is_err());
    }

    #[test]
    fn scratch_depth_reservation_is_sticky() {
        let mut scratch = GemmScratch::with_depth(64);
        assert!(scratch.depth_capacity() >= 64);
        // Packing a shallower block must not shrink the buffer.
        let x = tensor_i8((0..2 * 3).map(pseudo).collect(), &[2, 3]);
        let w = tensor_i8((0..3 * 2).map(pseudo).collect(), &[3, 2]);
        let packed = PackedWeights::pack(&w).unwrap();
        gemm_i8_i32(&x, &packed, &mut scratch).unwrap();
        assert!(scratch.depth_capacity() >= 64);
        scratch.reserve_depth(16); // no-op below capacity
        assert!(scratch.depth_capacity() >= 64);
        scratch.reserve_depth(128);
        assert!(scratch.depth_capacity() >= 128);
    }

    #[test]
    fn packed_accessors_report_shape() {
        let w = tensor_i8((0..6).map(|i| i as i8).collect(), &[2, 3]);
        let packed = PackedWeights::pack(&w).unwrap();
        assert_eq!(packed.k(), 2);
        assert_eq!(packed.n(), 3);
    }
}
