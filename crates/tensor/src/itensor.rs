//! Dense integer tensors used by the integer-only inference engine and the
//! accelerator simulator.

use crate::{Result, Shape, TensorError};
use std::fmt::Debug;

/// Marker trait for the integer element types supported by [`IntTensor`].
///
/// The trait is sealed in spirit: it is implemented for the signed integer
/// widths that appear in the FQ-BERT datapath (`i8` activations/weights,
/// `i16` intermediate fixed-point values, `i32` biases and accumulators,
/// `i64` wide accumulators used by the cycle model).
pub trait IntElement:
    Copy + Clone + Debug + Default + PartialEq + Eq + PartialOrd + Ord + Send + Sync + 'static
{
    /// Converts the element to `i64` for wide accumulation.
    fn to_i64(self) -> i64;
    /// Converts from `i64`, saturating at the type bounds.
    fn from_i64_saturating(v: i64) -> Self;
}

macro_rules! impl_int_element {
    ($($t:ty),*) => {
        $(
            impl IntElement for $t {
                fn to_i64(self) -> i64 {
                    self as i64
                }
                fn from_i64_saturating(v: i64) -> Self {
                    if v > <$t>::MAX as i64 {
                        <$t>::MAX
                    } else if v < <$t>::MIN as i64 {
                        <$t>::MIN
                    } else {
                        v as $t
                    }
                }
            }
        )*
    };
}

impl_int_element!(i8, i16, i32, i64);

/// A dense, row-major integer tensor.
///
/// # Examples
///
/// ```
/// use fqbert_tensor::IntTensor;
///
/// let w = IntTensor::<i8>::from_vec(vec![1, -2, 3, -4], &[2, 2])?;
/// let x = IntTensor::<i8>::from_vec(vec![1, 0, 0, 1], &[2, 2])?;
/// let y = w.matmul_i32(&x)?;
/// assert_eq!(y.as_slice(), &[1, -2, 3, -4]);
/// # Ok::<(), fqbert_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntTensor<T: IntElement> {
    data: Vec<T>,
    shape: Shape,
}

impl<T: IntElement> IntTensor<T> {
    /// Creates an integer tensor filled with the default value (zero).
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![T::default(); shape.numel()],
            shape,
        }
    }

    /// Creates an integer tensor from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element count does
    /// not match the shape.
    pub fn from_vec(data: Vec<T>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        shape.check_numel(data.len())?;
        Ok(Self { data, shape })
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the underlying data as a flat slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns the underlying data as a mutable flat slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Interprets the tensor as a 2-D matrix and returns `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn as_matrix_dims(&self) -> Result<(usize, usize)> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "as_matrix_dims",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        Ok((self.shape.dim(0), self.shape.dim(1)))
    }

    /// Returns row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> &[T] {
        let (r, c) = self
            .as_matrix_dims()
            .expect("row() requires a rank-2 tensor");
        assert!(i < r, "row index {i} out of bounds for {r} rows");
        &self.data[i * c..(i + 1) * c]
    }

    /// Converts every element to `f32` after multiplying by `scale`
    /// (dequantization).
    pub fn dequantize(&self, scale: f32) -> crate::Tensor {
        let data = self
            .data
            .iter()
            .map(|&x| x.to_i64() as f32 * scale)
            .collect();
        crate::Tensor::from_vec(data, self.dims()).expect("shape preserved by construction")
    }

    /// Reshapes the tensor, preserving element order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        shape.check_numel(self.data.len())?;
        Ok(Self {
            data: self.data.clone(),
            shape,
        })
    }

    /// Transposes a rank-2 integer tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Self> {
        let (r, c) = self.as_matrix_dims()?;
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Integer matrix–matrix product with an `i32` accumulator,
    /// `self (m×k) · rhs (k×n)`.
    ///
    /// This mirrors the arithmetic performed by the accelerator's PE array:
    /// narrow operands, wide accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul_i32(&self, rhs: &IntTensor<T>) -> Result<IntTensor<i32>> {
        let (m, k) = self.as_matrix_dims()?;
        let (k2, n) = rhs.as_matrix_dims()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_i32",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = IntTensor::<i32>::zeros(&[m, n]);
        for i in 0..m {
            for kk in 0..k {
                let a = self.data[i * k + kk].to_i64();
                if a == 0 {
                    continue;
                }
                for j in 0..n {
                    let b = rhs.data[kk * n + j].to_i64();
                    let cur = out.data[i * n + j] as i64;
                    out.data[i * n + j] = i32::from_i64_saturating(cur + a * b);
                }
            }
        }
        Ok(out)
    }

    /// Integer matrix product where the right-hand side is transposed:
    /// `self (m×k) · rhs (n×k)ᵀ` with an `i32` accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul_transposed_i32(&self, rhs: &IntTensor<T>) -> Result<IntTensor<i32>> {
        let (m, k) = self.as_matrix_dims()?;
        let (n, k2) = rhs.as_matrix_dims()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed_i32",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = IntTensor::<i32>::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc: i64 = 0;
                for kk in 0..k {
                    acc += self.data[i * k + kk].to_i64() * rhs.data[j * k + kk].to_i64();
                }
                out.data[i * n + j] = i32::from_i64_saturating(acc);
            }
        }
        Ok(out)
    }

    /// Maximum absolute value of the elements, as `i64`.
    pub fn abs_max(&self) -> i64 {
        self.data
            .iter()
            .map(|&x| x.to_i64().abs())
            .max()
            .unwrap_or(0)
    }
}

impl IntTensor<i8> {
    /// Size in bytes when packed at `bits` bits per element (used by the
    /// compression-ratio accounting of Table I).
    pub fn packed_bytes(&self, bits: u32) -> usize {
        (self.numel() * bits as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = IntTensor::<i8>::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0));
        assert!(IntTensor::<i8>::from_vec(vec![1, 2, 3], &[2, 2]).is_err());
    }

    #[test]
    fn get_set() {
        let mut t = IntTensor::<i32>::zeros(&[2, 2]);
        t.set(&[1, 1], -7).unwrap();
        assert_eq!(t.get(&[1, 1]).unwrap(), -7);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn matmul_i32_known_values() {
        let a = IntTensor::<i8>::from_vec(vec![1, 2, 3, 4, 5, 6], &[2, 3]).unwrap();
        let b = IntTensor::<i8>::from_vec(vec![7, 8, 9, 10, 11, 12], &[3, 2]).unwrap();
        let c = a.matmul_i32(&b).unwrap();
        assert_eq!(c.as_slice(), &[58, 64, 139, 154]);
    }

    #[test]
    fn matmul_transposed_matches_transpose() {
        let a = IntTensor::<i8>::from_vec((0..6).map(|x| x as i8).collect(), &[2, 3]).unwrap();
        let b = IntTensor::<i8>::from_vec((0..12).map(|x| x as i8 - 6).collect(), &[4, 3]).unwrap();
        let direct = a.matmul_transposed_i32(&b).unwrap();
        let reference = a.matmul_i32(&b.transpose2().unwrap()).unwrap();
        assert_eq!(direct, reference);
    }

    #[test]
    fn saturating_accumulation_does_not_wrap() {
        let a = IntTensor::<i32>::from_vec(vec![i32::MAX, i32::MAX], &[1, 2]).unwrap();
        let b = IntTensor::<i32>::from_vec(vec![1, 1], &[2, 1]).unwrap();
        let c = a.matmul_i32(&b).unwrap();
        assert_eq!(c.as_slice(), &[i32::MAX]);
    }

    #[test]
    fn dequantize_scales_values() {
        let t = IntTensor::<i8>::from_vec(vec![-2, 0, 4], &[3]).unwrap();
        let f = t.dequantize(0.5);
        assert_eq!(f.as_slice(), &[-1.0, 0.0, 2.0]);
    }

    #[test]
    fn abs_max_and_packed_bytes() {
        let t = IntTensor::<i8>::from_vec(vec![-8, 3, 7], &[3]).unwrap();
        assert_eq!(t.abs_max(), 8);
        assert_eq!(t.packed_bytes(4), 2);
        assert_eq!(t.packed_bytes(8), 3);
    }

    #[test]
    fn saturating_conversion() {
        assert_eq!(i8::from_i64_saturating(1000), i8::MAX);
        assert_eq!(i8::from_i64_saturating(-1000), i8::MIN);
        assert_eq!(i8::from_i64_saturating(5), 5);
        assert_eq!(i16::from_i64_saturating(40000), i16::MAX);
        assert_eq!(i32::from_i64_saturating(i64::MIN), i32::MIN);
    }

    #[test]
    fn transpose_round_trip() {
        let t = IntTensor::<i16>::from_vec((0..6).collect(), &[2, 3]).unwrap();
        assert_eq!(t.transpose2().unwrap().transpose2().unwrap(), t);
    }
}
