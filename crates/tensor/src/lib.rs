//! Dense tensor substrate for the FQ-BERT reproduction.
//!
//! This crate provides the two storage types everything else is built on:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with the linear-algebra and
//!   element-wise operations needed by a transformer (matmul, softmax,
//!   layer-norm statistics, GELU, …).
//! * [`IntTensor`] — a dense integer tensor generic over the element type,
//!   used by the integer-only inference engine and the accelerator simulator.
//!
//! The implementation is deliberately simple (no views with strides beyond
//! row-major contiguity) so that the numerical behaviour is easy to audit;
//! the accelerator simulator depends on bit-exact integer arithmetic rather
//! than on raw speed. The one performance-tuned exception is the [`gemm`]
//! module: a blocked int8 GEMM with packed weights, a fused requantize
//! epilogue, and runtime-dispatched SIMD micro-kernels
//! (AVX2/SSE2/NEON/scalar, selectable via `FQBERT_KERNEL` — see
//! [`gemm::kernels`]) — every path proven bit-identical to the naive
//! [`IntTensor::matmul_i32`] reduction order. See `README.md` in this crate
//! for the panel layouts and how to add a kernel.
//!
//! # Examples
//!
//! ```
//! use fqbert_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), fqbert_tensor::TensorError>(())
//! ```

pub mod error;
pub mod gemm;
pub mod init;
pub mod itensor;
pub mod ops;
pub mod pack4;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use gemm::{GemmScratch, PackedWeights};
pub use init::{xavier_uniform, RngSource};
pub use itensor::IntTensor;
pub use pack4::{pack_i4, unpack_i4};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
