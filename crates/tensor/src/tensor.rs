//! Dense row-major `f32` tensor.

use crate::{Result, Shape, TensorError};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the floating-point workhorse of the reproduction: the float
/// BERT baseline, the quantization calibration path and the reference outputs
/// that the integer engine is checked against are all expressed with it.
///
/// # Examples
///
/// ```
/// use fqbert_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let y = x.transpose2()?;
/// assert_eq!(y.shape().dims(), &[3, 2]);
/// assert_eq!(y.get(&[2, 1])?, 6.0);
/// # Ok::<(), fqbert_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        shape.check_numel(data.len())?;
        Ok(Self { data, shape })
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the underlying data as a flat row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable flat row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a new tensor with the same data and a different shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        shape.check_numel(self.data.len())?;
        Ok(Self {
            data: self.data.clone(),
            shape,
        })
    }

    /// Interprets the tensor as a 2-D matrix and returns `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn as_matrix_dims(&self) -> Result<(usize, usize)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "as_matrix_dims",
                expected: 2,
                actual: self.rank(),
            });
        }
        Ok((self.shape.dim(0), self.shape.dim(1)))
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Self> {
        let (r, c) = self.as_matrix_dims()?;
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Matrix–matrix product of two rank-2 tensors, `self (m×k) · rhs (k×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ
    /// or either operand is not rank 2.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Self> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (rhs.shape.dim(0), rhs.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = Self::zeros(&[m, n]);
        // i-k-j loop order keeps the innermost accesses contiguous for both
        // the output row and the rhs row, which matters for the larger
        // BERT-base shapes used by the performance experiments.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product where the right-hand side is transposed:
    /// `self (m×k) · rhs (n×k)ᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul_transposed(&self, rhs: &Tensor) -> Result<Self> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (rhs.shape.dim(0), rhs.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = Self::zeros(&[m, n]);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// Returns row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        let (r, c) = self
            .as_matrix_dims()
            .expect("row() requires a rank-2 tensor");
        assert!(i < r, "row index {i} out of bounds for {r} rows");
        &self.data[i * c..(i + 1) * c]
    }

    /// Returns a mutable view of row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let (r, c) = self
            .as_matrix_dims()
            .expect("row_mut() requires a rank-2 tensor");
        assert!(i < r, "row index {i} out of bounds for {r} rows");
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Stacks rank-2 tensors with identical column counts vertically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ, or
    /// [`TensorError::EmptyTensor`] when `parts` is empty.
    pub fn vstack(parts: &[&Tensor]) -> Result<Self> {
        let first = parts.first().ok_or(TensorError::EmptyTensor("vstack"))?;
        let (_, cols) = first.as_matrix_dims()?;
        let mut data = Vec::new();
        let mut rows = 0usize;
        for p in parts {
            let (r, c) = p.as_matrix_dims()?;
            if c != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            rows += r;
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &[rows, cols])
    }

    /// Concatenates rank-2 tensors with identical row counts horizontally.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if row counts differ, or
    /// [`TensorError::EmptyTensor`] when `parts` is empty.
    pub fn hstack(parts: &[&Tensor]) -> Result<Self> {
        let first = parts.first().ok_or(TensorError::EmptyTensor("hstack"))?;
        let (rows, _) = first.as_matrix_dims()?;
        let mut cols_total = 0usize;
        for p in parts {
            let (r, c) = p.as_matrix_dims()?;
            if r != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "hstack",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            cols_total += c;
        }
        let mut out = Tensor::zeros(&[rows, cols_total]);
        for i in 0..rows {
            let mut off = 0usize;
            for p in parts {
                let c = p.shape.dim(1);
                out.data[i * cols_total + off..i * cols_total + off + c].copy_from_slice(p.row(i));
                off += c;
            }
        }
        Ok(out)
    }

    /// Extracts the column range `[start, end)` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or the range is invalid.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Self> {
        let (rows, cols) = self.as_matrix_dims()?;
        if start > end || end > cols {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: self.dims().to_vec(),
            });
        }
        let width = end - start;
        let mut out = Tensor::zeros(&[rows, width]);
        for i in 0..rows {
            out.data[i * width..(i + 1) * width]
                .copy_from_slice(&self.data[i * cols + start..i * cols + end]);
        }
        Ok(out)
    }

    /// Extracts the row range `[start, end)` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2 or the range is invalid.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self> {
        let (rows, cols) = self.as_matrix_dims()?;
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: self.dims().to_vec(),
            });
        }
        Tensor::from_vec(
            self.data[start * cols..end * cols].to_vec(),
            &[end - start, cols],
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[2, 2]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_matmul_is_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn from_vec_rejects_bad_shape() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 2]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| 0.5 * x as f32).collect(), &[4, 3]).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        let reference = a.matmul(&b.transpose2().unwrap()).unwrap();
        assert_eq!(direct, reference);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.transpose2().unwrap().transpose2().unwrap(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn vstack_hstack() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let v = Tensor::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.dims(), &[2, 2]);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.dims(), &[1, 4]);
        assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_cols_and_rows() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let c = a.slice_cols(1, 3).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        let r = a.slice_rows(1, 2).unwrap();
        assert_eq!(r.dims(), &[1, 4]);
        assert_eq!(r.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(a.slice_cols(3, 5).is_err());
        assert!(a.slice_rows(2, 5).is_err());
    }

    #[test]
    fn row_accessors() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        let mut b = a.clone();
        b.row_mut(0)[0] = 9.0;
        assert_eq!(b.get(&[0, 0]).unwrap(), 9.0);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.as_slice(), &[3.5]);
    }
}
