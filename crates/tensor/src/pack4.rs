//! Two-codes-per-byte packing for 4-bit integer weights.
//!
//! A 4-bit weight code occupies the range `[-8, 7]` (symmetric quantization
//! actually uses `[-7, 7]`, but the full two's-complement nibble range is
//! representable). Packing stores consecutive codes in nibble pairs —
//! element `2i` in the low nibble of byte `i`, element `2i + 1` in the high
//! nibble — halving the storage of a w4 weight matrix. An odd trailing
//! element leaves the final high nibble zero.
//!
//! This is a **storage** layout: the v2 model-artifact format packs 4-bit
//! weight tensors with [`pack_i4`] on save and widens them back to plain
//! `i8` codes with [`unpack_i4`] on load. At layer construction the GEMM
//! either re-packs the widened codes into its `i16` panel layout exactly as
//! for 8-bit weights, or — for `weight_bits ≤ 4` — builds nibble panels
//! (`PackedWeights::pack_nibble`) with this same two's-complement encoding
//! that the SIMD kernels consume directly, sign-extending in-register. The
//! property tests in `tests/proptest_pack4.rs` pin `unpack(pack(x)) == x`
//! over the whole nibble range.

use crate::{Result, TensorError};

/// Packs 4-bit codes (each in `[-8, 7]`) two per byte, low nibble first.
///
/// # Errors
///
/// Returns [`TensorError::ValueOutOfRange`] if any code does not fit a
/// signed nibble.
pub fn pack_i4(codes: &[i8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(codes.len().div_ceil(2));
    for pair in codes.chunks(2) {
        let lo = nibble(pair[0])?;
        let hi = if pair.len() == 2 { nibble(pair[1])? } else { 0 };
        out.push(lo | (hi << 4));
    }
    Ok(out)
}

/// Unpacks `len` 4-bit codes from their nibble-pair encoding, sign-extending
/// each nibble back to `i8`.
///
/// # Errors
///
/// Returns [`TensorError::ValueOutOfRange`] if `bytes` is not exactly
/// `ceil(len / 2)` bytes, or if an odd `len` leaves a non-zero final high
/// nibble (a corrupt encoding — the packer always zeroes it).
pub fn unpack_i4(bytes: &[u8], len: usize) -> Result<Vec<i8>> {
    if bytes.len() != len.div_ceil(2) {
        return Err(TensorError::ValueOutOfRange {
            what: "packed int4 byte count",
            value: bytes.len() as i64,
        });
    }
    if len % 2 == 1 {
        let last = bytes[bytes.len() - 1];
        if last >> 4 != 0 {
            return Err(TensorError::ValueOutOfRange {
                what: "trailing int4 high nibble (must be zero padding)",
                value: i64::from(last >> 4),
            });
        }
    }
    let mut out = Vec::with_capacity(len);
    for (i, &byte) in bytes.iter().enumerate() {
        out.push(sign_extend(byte & 0x0f));
        if 2 * i + 1 < len {
            out.push(sign_extend(byte >> 4));
        }
    }
    Ok(out)
}

/// The two's-complement nibble of a code in `[-8, 7]`.
///
/// Shared with `gemm::PackedWeights::pack_nibble`, which builds the
/// direct-compute nibble panels with the same encoding.
pub(crate) fn nibble(code: i8) -> Result<u8> {
    if !(-8..=7).contains(&code) {
        return Err(TensorError::ValueOutOfRange {
            what: "int4 weight code",
            value: i64::from(code),
        });
    }
    // fqlint::allow(narrowing-cast): range-checked to [-8, 7] above; the
    // cast is the two's-complement nibble encoding itself.
    Ok((code as u8) & 0x0f)
}

/// Sign-extends a two's-complement nibble back to `i8`.
///
/// Also the scalar reference for the in-register nibble decode in the
/// `gemm::kernels` int4 compute path.
pub(crate) fn sign_extend(nibble: u8) -> i8 {
    // fqlint::allow(narrowing-cast): same-width `u8 -> i8`
    // reinterpretation — the shift pair is the sign extension.
    ((nibble << 4) as i8) >> 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_whole_nibble_range() {
        let codes: Vec<i8> = (-8..=7).collect();
        let packed = pack_i4(&codes).unwrap();
        assert_eq!(packed.len(), 8);
        assert_eq!(unpack_i4(&packed, codes.len()).unwrap(), codes);
    }

    #[test]
    fn odd_lengths_pad_the_final_high_nibble_with_zero() {
        let codes = [3i8, -2, 7];
        let packed = pack_i4(&codes).unwrap();
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[1] >> 4, 0);
        assert_eq!(unpack_i4(&packed, 3).unwrap(), codes);
    }

    #[test]
    fn empty_input_round_trips() {
        assert!(pack_i4(&[]).unwrap().is_empty());
        assert!(unpack_i4(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_codes_are_rejected() {
        assert!(pack_i4(&[8]).is_err());
        assert!(pack_i4(&[-9]).is_err());
        assert!(pack_i4(&[127]).is_err());
    }

    #[test]
    fn wrong_byte_counts_and_dirty_padding_are_rejected() {
        assert!(unpack_i4(&[0, 0], 5).is_err());
        assert!(unpack_i4(&[0], 3).is_err());
        // Odd length with a non-zero trailing high nibble is corrupt.
        assert!(unpack_i4(&[0x00, 0x10], 3).is_err());
    }

    #[test]
    fn negative_codes_sign_extend() {
        let packed = pack_i4(&[-1, -8]).unwrap();
        assert_eq!(packed, vec![0x8f]);
        assert_eq!(unpack_i4(&packed, 2).unwrap(), vec![-1, -8]);
    }
}
