//! Shape handling for dense row-major tensors.

use crate::{Result, TensorError};
use std::fmt;

/// The shape (dimension sizes) of a dense row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. Rank-0 (scalar) shapes are
/// permitted and contain exactly one element.
///
/// # Examples
///
/// ```
/// use fqbert_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.dims(), &[2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any component is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            if i >= self.dims[d] {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Checks that `elements` items can fill this shape exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] on a mismatch.
    pub fn check_numel(&self, elements: usize) -> Result<()> {
        if elements == self.numel() {
            Ok(())
        } else {
            Err(TensorError::ShapeDataMismatch {
                elements,
                shape: self.dims.clone(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn check_numel_detects_mismatch() {
        let s = Shape::new(&[2, 2]);
        assert!(s.check_numel(4).is_ok());
        assert!(s.check_numel(5).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
