//! Error type shared by all tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    ShapeDataMismatch {
        /// Number of elements provided.
        elements: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index is out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// Offending index.
        index: Vec<usize>,
        /// Tensor shape.
        shape: Vec<usize>,
    },
    /// The operation is undefined for an empty tensor.
    EmptyTensor(&'static str),
    /// A value is outside the domain an encoding can represent.
    ValueOutOfRange {
        /// What the value was supposed to be.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { elements, shape } => write!(
                f,
                "data of {elements} elements cannot be reshaped to {shape:?}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::EmptyTensor(op) => write!(f, "{op} is undefined for an empty tensor"),
            TensorError::ValueOutOfRange { what, value } => {
                write!(f, "{value} is not a valid {what}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            TensorError::ShapeDataMismatch {
                elements: 3,
                shape: vec![2, 2],
            },
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![2, 3],
                rhs: vec![4, 5],
            },
            TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: 3,
            },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                shape: vec![3],
            },
            TensorError::EmptyTensor("max"),
            TensorError::ValueOutOfRange {
                what: "int4 weight code",
                value: 9,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
