//! Deterministic random initialisation helpers.
//!
//! All experiments in the reproduction are seeded so that every table and
//! figure can be regenerated bit-for-bit. [`RngSource`] wraps a xoshiro256++
//! generator (implemented in-repo so the workspace builds without network
//! access) seeded from a `u64` via splitmix64, and is the only RNG
//! constructor the rest of the workspace uses.

use crate::Tensor;

/// Deterministic random number source used throughout the workspace.
///
/// # Examples
///
/// ```
/// use fqbert_tensor::RngSource;
///
/// let mut a = RngSource::seed_from_u64(42);
/// let mut b = RngSource::seed_from_u64(42);
/// assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct RngSource {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngSource {
    /// Creates a source seeded from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64 as recommended by the xoshiro
        // authors so that low-entropy seeds produce unrelated streams.
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.state = [s0n, s1n, s2n, s3n];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws a uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform range must be non-empty");
        let v = (f64::from(lo) + self.unit_f64() * (f64::from(hi) - f64::from(lo))) as f32;
        // Guard against f64→f32 rounding landing exactly on the open bound.
        v.min(hi.next_down()).max(lo)
    }

    /// Draws a standard-normal sample (Box–Muller).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        let u1 = (self.unit_f64() as f32).max(f32::EPSILON);
        let u2 = self.unit_f64() as f32;
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Draws an integer uniformly from `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in range must be non-empty");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Draws a boolean with probability `p` of being `true`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Returns a tensor of the given shape filled with uniform samples.
    pub fn uniform_tensor(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.uniform(lo, hi)).collect();
        Tensor::from_vec(data, dims).expect("shape consistent by construction")
    }

    /// Returns a tensor of the given shape filled with normal samples.
    pub fn normal_tensor(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.normal(mean, std)).collect();
        Tensor::from_vec(data, dims).expect("shape consistent by construction")
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// Xavier/Glorot uniform initialisation for a `fan_in × fan_out` weight
/// matrix, the initialisation used by the BERT baseline.
///
/// # Examples
///
/// ```
/// use fqbert_tensor::{xavier_uniform, RngSource};
///
/// let mut rng = RngSource::seed_from_u64(0);
/// let w = xavier_uniform(&mut rng, 64, 32);
/// assert_eq!(w.dims(), &[64, 32]);
/// ```
pub fn xavier_uniform(rng: &mut RngSource, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_tensor(&[fan_in, fan_out], -limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_reproducibility() {
        let mut a = RngSource::seed_from_u64(7);
        let mut b = RngSource::seed_from_u64(7);
        let ta = a.normal_tensor(&[4, 4], 0.0, 1.0);
        let tb = b.normal_tensor(&[4, 4], 0.0, 1.0);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngSource::seed_from_u64(1);
        let mut b = RngSource::seed_from_u64(2);
        assert_ne!(
            a.uniform_tensor(&[8], 0.0, 1.0),
            b.uniform_tensor(&[8], 0.0, 1.0)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = RngSource::seed_from_u64(3);
        let t = rng.uniform_tensor(&[1000], -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = RngSource::seed_from_u64(4);
        let t = rng.normal_tensor(&[20_000], 1.0, 2.0);
        let mean = t.mean().unwrap();
        let var = t.map(|x| (x - mean) * (x - mean)).mean().unwrap();
        assert!((mean - 1.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn xavier_limit_scales_with_fan() {
        let mut rng = RngSource::seed_from_u64(5);
        let w = xavier_uniform(&mut rng, 128, 128);
        let limit = (6.0f32 / 256.0).sqrt();
        assert!(w.abs_max().unwrap() <= limit);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = RngSource::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn usize_in_and_bool_with() {
        let mut rng = RngSource::seed_from_u64(8);
        for _ in 0..100 {
            let x = rng.usize_in(3, 10);
            assert!((3..10).contains(&x));
        }
        let trues = (0..1000).filter(|_| rng.bool_with(0.7)).count();
        assert!((600..800).contains(&trues));
    }
}
