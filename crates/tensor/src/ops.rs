//! Element-wise operations, reductions and neural-network primitives on
//! [`Tensor`].
//!
//! These are the floating-point reference implementations: the quantized
//! kernels in `fqbert-quant` and the accelerator datapath in `fqbert-accel`
//! are validated against the functions defined here.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "div", |a, b| a / b)
    }

    /// Adds a 1-D bias vector to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` does not have exactly
    /// one element per column.
    pub fn add_bias(&self, bias: &Tensor) -> Result<Tensor> {
        let (_, cols) = self.as_matrix_dims()?;
        if bias.numel() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_bias",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.as_slice();
        for row in out.as_mut_slice().chunks_mut(cols) {
            for (x, &bb) in row.iter_mut().zip(b.iter()) {
                *x += bb;
            }
        }
        Ok(out)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let mut out = self.clone();
        for x in out.as_mut_slice() {
            *x = f(*x);
        }
        out
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: F,
    ) -> Result<Tensor> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor has no elements.
    pub fn mean(&self) -> Result<f32> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor("mean"));
        }
        Ok(self.sum() / self.numel() as f32)
    }

    /// Maximum element value.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor has no elements.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(TensorError::EmptyTensor("max"))
    }

    /// Minimum element value.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor has no elements.
    pub fn min(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
            .ok_or(TensorError::EmptyTensor("min"))
    }

    /// Maximum absolute element value.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor has no elements.
    pub fn abs_max(&self) -> Result<f32> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor("abs_max"));
        }
        Ok(self
            .as_slice()
            .iter()
            .fold(0.0f32, |acc, &x| acc.max(x.abs())))
    }

    /// Index of the maximum element of a 1-D tensor or row slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] if the tensor has no elements.
    pub fn argmax(&self) -> Result<usize> {
        if self.numel() == 0 {
            return Err(TensorError::EmptyTensor("argmax"));
        }
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &x) in self.as_slice().iter().enumerate() {
            if x > best_v {
                best_v = x;
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (rows, cols) = self.as_matrix_dims()?;
        let mut out = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = self.row(i);
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (j, &x) in row.iter().enumerate() {
                if x > best_v {
                    best_v = x;
                    best = j;
                }
            }
            debug_assert!(best < cols);
            out.push(best);
        }
        Ok(out)
    }

    /// Numerically stable softmax applied independently to each row of a
    /// rank-2 tensor (the float reference for the accelerator's Softmax core).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        let (rows, cols) = self.as_matrix_dims()?;
        let mut out = self.clone();
        for i in 0..rows {
            let row = &mut out.as_mut_slice()[i * cols..(i + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                denom += *x;
            }
            for x in row.iter_mut() {
                *x /= denom;
            }
        }
        Ok(out)
    }

    /// Layer normalization over the last dimension of a rank-2 tensor.
    ///
    /// `gamma` and `beta` must each hold one value per column.
    ///
    /// # Errors
    ///
    /// Returns a shape error if operand shapes are inconsistent.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
        let (rows, cols) = self.as_matrix_dims()?;
        if gamma.numel() != cols || beta.numel() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: self.dims().to_vec(),
                rhs: gamma.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let g = gamma.as_slice();
        let b = beta.as_slice();
        for i in 0..rows {
            let row = &mut out.as_mut_slice()[i * cols..(i + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            for (j, x) in row.iter_mut().enumerate() {
                *x = (*x - mean) * inv_std * g[j] + b[j];
            }
        }
        Ok(out)
    }

    /// GELU activation (tanh approximation, as used by BERT).
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// ReLU activation.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice().iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Frobenius norm (square root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Mean squared error against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32> {
        let diff = self.sub(other)?;
        diff.map(|x| x * x).mean()
    }
}
/// Index of the largest value of a slice (first wins on ties; 0 for an
/// empty slice). Shared by the logit argmax paths of the integer engine and
/// the runtime.
///
/// ```
/// assert_eq!(fqbert_tensor::ops::argmax_slice(&[0.1, 0.9, 0.9]), 1);
/// assert_eq!(fqbert_tensor::ops::argmax_slice(&[]), 0);
/// ```
pub fn argmax_slice(values: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// GELU activation on a single value (tanh approximation used by BERT).
///
/// # Examples
///
/// ```
/// let y = fqbert_tensor::ops::gelu_scalar(0.0);
/// assert_eq!(y, 0.0);
/// ```
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(
            a.add_bias(&b).unwrap().as_slice(),
            &[11.0, 22.0, 13.0, 24.0]
        );
        assert!(a.add_bias(&t(&[1.0], &[1])).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(&[-1.0, 2.0, -3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean().unwrap(), 0.5);
        assert_eq!(a.max().unwrap(), 4.0);
        assert_eq!(a.min().unwrap(), -3.0);
        assert_eq!(a.abs_max().unwrap(), 4.0);
        assert_eq!(a.argmax().unwrap(), 3);
    }

    #[test]
    fn argmax_rows_per_row() {
        let a = t(&[0.0, 5.0, 1.0, 9.0, 2.0, 3.0], &[2, 3]);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_shift_invariant() {
        let a = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Softmax invariance to a constant shift: the property the paper's
        // max-subtraction LUT trick relies on.
        let shifted = a.map(|x| x + 100.0).softmax_rows().unwrap();
        assert!(s.allclose(&shifted, 1e-5));
    }

    #[test]
    fn layer_norm_zero_mean_unit_variance() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let y = a.layer_norm(&gamma, &beta, 1e-6).unwrap();
        for i in 0..2 {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // GELU approaches identity for large positive inputs.
        assert!((gelu_scalar(6.0) - 6.0).abs() < 1e-3);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = t(&[-2.0, 0.0, 3.0], &[3]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn allclose_and_mse() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.001], &[2]);
        assert!(a.allclose(&b, 0.01));
        assert!(!a.allclose(&b, 0.0001));
        assert!(a.mse(&b).unwrap() < 1e-5);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
