//! Property-based tests for the tensor substrate.

use fqbert_tensor::{IntTensor, RngSource, Tensor};
use proptest::prelude::*;

/// Strategy producing a random rank-2 tensor together with its dimensions.
fn matrix(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            Just(r),
            Just(c),
            proptest::collection::vec(-100.0f32..100.0, r * c),
        )
    })
}

fn imatrix(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<i8>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            Just(r),
            Just(c),
            proptest::collection::vec(-127i8..=127, r * c),
        )
    })
}

proptest! {
    #[test]
    fn transpose_involution((r, c, data) in matrix(12)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        prop_assert_eq!(t.transpose2().unwrap().transpose2().unwrap(), t);
    }

    #[test]
    fn matmul_identity_left((r, c, data) in matrix(12)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let out = Tensor::eye(r).matmul(&t).unwrap();
        prop_assert!(out.allclose(&t, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition(
        (r, c, a) in matrix(8),
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_vec(a, &[r, c]).unwrap();
        let mut rng = RngSource::seed_from_u64(seed);
        let b = rng.uniform_tensor(&[r, c], -1.0, 1.0);
        let w = rng.uniform_tensor(&[c, 3], -1.0, 1.0);
        let lhs = a.add(&b).unwrap().matmul(&w).unwrap();
        let rhs = a.matmul(&w).unwrap().add(&b.matmul(&w).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn softmax_rows_are_probability_distributions((r, c, data) in matrix(10)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..r {
            let row = s.row(i);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }

    #[test]
    fn softmax_shift_invariance((r, c, data) in matrix(8), shift in -50.0f32..50.0) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let a = t.softmax_rows().unwrap();
        let b = t.map(|x| x + shift).softmax_rows().unwrap();
        prop_assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn int_matmul_matches_float((r, c, data) in imatrix(10), seed in 0u64..1000) {
        let a = IntTensor::<i8>::from_vec(data, &[r, c]).unwrap();
        let mut rng = RngSource::seed_from_u64(seed);
        let b_f: Vec<i8> = (0..c * 4).map(|_| rng.usize_in(0, 31) as i8 - 15).collect();
        let b = IntTensor::<i8>::from_vec(b_f, &[c, 4]).unwrap();
        let int_out = a.matmul_i32(&b).unwrap();
        let float_out = a.dequantize(1.0).matmul(&b.dequantize(1.0)).unwrap();
        for (i, &v) in int_out.as_slice().iter().enumerate() {
            prop_assert!((v as f32 - float_out.as_slice()[i]).abs() < 0.5);
        }
    }

    #[test]
    fn layer_norm_output_statistics((r, c, data) in matrix(10)) {
        prop_assume!(c >= 2);
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let y = t
            .layer_norm(&Tensor::ones(&[c]), &Tensor::zeros(&[c]), 1e-5)
            .unwrap();
        for i in 0..r {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / c as f32;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_round_trip((r, c, data) in matrix(12)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let flat = t.reshape(&[r * c]).unwrap();
        let back = flat.reshape(&[r, c]).unwrap();
        prop_assert_eq!(back, t);
    }
}
