//! Property tests pinning the blocked int8 GEMM kernel to the naive
//! `matmul_i32` + scalar epilogue path: same shapes, same accumulators, same
//! fused outputs, across random shapes including non-multiple-of-block
//! dimensions, empty matrices and int4-range weights.

use fqbert_tensor::gemm::{gemm_i8_fused, gemm_i8_i32, GemmScratch, PackedWeights, MR, NR};
use fqbert_tensor::IntTensor;
use proptest::prelude::*;

fn i8_full() -> impl Strategy<Value = i8> {
    -128i8..=127
}

fn i4() -> impl Strategy<Value = i8> {
    -8i8..=7
}

fn build(seed: &[i8], rows: usize, cols: usize) -> IntTensor<i8> {
    let data: Vec<i8> = (0..rows * cols)
        .map(|i| {
            if seed.is_empty() {
                0
            } else {
                seed[i % seed.len()]
            }
        })
        .collect();
    IntTensor::from_vec(data, &[rows, cols]).expect("shape")
}

proptest! {
    #[test]
    fn blocked_accumulators_match_naive_matmul(
        m in 0usize..33,
        k in 0usize..70,
        n in 0usize..50,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        let blocked = gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked");
        let naive = x.matmul_i32(&w).expect("naive");
        prop_assert_eq!(blocked, naive);
    }

    #[test]
    fn blocked_kernel_is_exact_for_int4_weights(
        m in 1usize..20,
        k in 1usize..120,
        n in 1usize..40,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i4(), 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        let blocked = gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked");
        let naive = x.matmul_i32(&w).expect("naive");
        prop_assert_eq!(blocked, naive);
    }

    #[test]
    fn fused_epilogue_matches_scalar_postprocessing(
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..32,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
        seed_b in proptest::collection::vec(-20_000i32..20_000, 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let bias: Vec<i32> = (0..n).map(|i| seed_b[i % seed_b.len()]).collect();
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        // Epilogue mirroring IntLinear: bias add + divide + clamp to int8.
        let epilogue = |acc: i32, c: usize| -> i8 {
            ((i64::from(acc) + i64::from(bias[c])) / 37).clamp(-127, 127) as i8
        };
        let fused = gemm_i8_fused(&x, &packed, &mut scratch, epilogue).expect("fused");
        let naive = x.matmul_i32(&w).expect("naive");
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(fused.row(r)[c], epilogue(naive.row(r)[c], c));
            }
        }
    }

    #[test]
    fn exact_block_multiples_are_also_exact(
        mb in 1usize..5,
        kb in 1usize..4,
        nb in 1usize..4,
        seed in proptest::collection::vec(i8_full(), 1..64),
    ) {
        // Shapes that are exact multiples of the MR × NR tile.
        let (m, k, n) = (mb * MR, kb * 32, nb * NR);
        let x = build(&seed, m, k);
        let w = build(&seed, k, n);
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        prop_assert_eq!(
            gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked"),
            x.matmul_i32(&w).expect("naive")
        );
    }
}
