//! Property tests pinning the blocked int8 GEMM kernel to the naive
//! `matmul_i32` + scalar epilogue path: same shapes, same accumulators, same
//! fused outputs, across random shapes including non-multiple-of-block
//! dimensions, empty matrices and int4-range weights — and, since the SIMD
//! dispatch landed, across **every kernel available on this host**
//! (scalar/sse2/avx2/neon × wide/int4-nibble panels).
//!
//! Kernel selection is process-global, so tests that force a kernel
//! serialise on [`kernel_lock`] and restore the auto-detected default
//! before releasing it. (Even a mid-test switch would be benign — every
//! kernel is bit-identical — but serialising keeps each run's coverage
//! deterministic.)

use fqbert_tensor::gemm::kernels::{self, KernelKind};
use fqbert_tensor::gemm::{
    gemm_i8_fused, gemm_i8_i32, gemm_i8_requant, GemmScratch, PackedWeights, RequantParams, MR, NR,
};
use fqbert_tensor::{pack4, IntTensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn kernel_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn i8_full() -> impl Strategy<Value = i8> {
    -128i8..=127
}

fn i4() -> impl Strategy<Value = i8> {
    -8i8..=7
}

fn i2() -> impl Strategy<Value = i8> {
    -2i8..=1
}

fn build(seed: &[i8], rows: usize, cols: usize) -> IntTensor<i8> {
    let data: Vec<i8> = (0..rows * cols)
        .map(|i| {
            if seed.is_empty() {
                0
            } else {
                seed[i % seed.len()]
            }
        })
        .collect();
    IntTensor::from_vec(data, &[rows, cols]).expect("shape")
}

proptest! {
    #[test]
    fn blocked_accumulators_match_naive_matmul(
        m in 0usize..33,
        k in 0usize..70,
        n in 0usize..50,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        let blocked = gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked");
        let naive = x.matmul_i32(&w).expect("naive");
        prop_assert_eq!(blocked, naive);
    }

    #[test]
    fn blocked_kernel_is_exact_for_int4_weights(
        m in 1usize..20,
        k in 1usize..120,
        n in 1usize..40,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i4(), 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        let blocked = gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked");
        let naive = x.matmul_i32(&w).expect("naive");
        prop_assert_eq!(blocked, naive);
    }

    // The tentpole property: every kernel available on this host produces
    // accumulators bit-identical to the naive reduction, over both wide
    // `i16` panels (int8 weights) and direct-compute nibble panels (int4
    // and int2 weight codes), across shapes with odd-k remainders and
    // partial row/column tiles.
    #[test]
    fn every_available_kernel_is_bit_identical_to_naive(
        m in 0usize..18,
        k in 0usize..80,
        n in 0usize..70,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w8 in proptest::collection::vec(i8_full(), 1..64),
        seed_w4 in proptest::collection::vec(i4(), 1..64),
        seed_w2 in proptest::collection::vec(i2(), 1..64),
    ) {
        let _guard = kernel_lock();
        let x = build(&seed_x, m, k);
        let w8 = build(&seed_w8, k, n);
        let w4 = build(&seed_w4, k, n);
        let w2 = build(&seed_w2, k, n);
        let wide = PackedWeights::pack(&w8).expect("pack wide");
        let nib4 = PackedWeights::pack_nibble(&w4).expect("pack nibble w4");
        let nib2 = PackedWeights::pack_nibble(&w2).expect("pack nibble w2");
        let naive8 = x.matmul_i32(&w8).expect("naive w8");
        let naive4 = x.matmul_i32(&w4).expect("naive w4");
        let naive2 = x.matmul_i32(&w2).expect("naive w2");
        let mut scratch = GemmScratch::new();
        for kind in kernels::available() {
            prop_assert_eq!(kernels::force(kind), kind);
            let name = kind.name();
            let got8 = gemm_i8_i32(&x, &wide, &mut scratch).expect("wide gemm");
            prop_assert_eq!(&got8, &naive8, "wide panels diverge on {}", name);
            let got4 = gemm_i8_i32(&x, &nib4, &mut scratch).expect("nibble w4 gemm");
            prop_assert_eq!(&got4, &naive4, "int4 nibble panels diverge on {}", name);
            let got2 = gemm_i8_i32(&x, &nib2, &mut scratch).expect("nibble w2 gemm");
            prop_assert_eq!(&got2, &naive2, "int2 nibble panels diverge on {}", name);
        }
        kernels::force(kernels::best_available());
    }

    // The fused epilogue sees identical accumulators on every kernel, so
    // requantized int8 outputs are identical too.
    #[test]
    fn fused_outputs_are_identical_across_kernels(
        m in 1usize..10,
        k in 1usize..50,
        n in 1usize..40,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
        seed_b in proptest::collection::vec(-20_000i32..20_000, 1..64),
    ) {
        let _guard = kernel_lock();
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let bias: Vec<i32> = (0..n).map(|i| seed_b[i % seed_b.len()]).collect();
        let packed = PackedWeights::pack(&w).expect("pack");
        let epilogue = |acc: i32, c: usize| -> i8 {
            ((i64::from(acc) + i64::from(bias[c])) / 37).clamp(-127, 127) as i8
        };
        let mut scratch = GemmScratch::new();
        kernels::force(KernelKind::Scalar);
        let reference = gemm_i8_fused(&x, &packed, &mut scratch, epilogue).expect("scalar fused");
        for kind in kernels::available() {
            kernels::force(kind);
            let got = gemm_i8_fused(&x, &packed, &mut scratch, epilogue).expect("fused");
            prop_assert_eq!(&got, &reference, "fused outputs diverge on {}", kind.name());
        }
        kernels::force(kernels::best_available());
    }

    #[test]
    fn fused_epilogue_matches_scalar_postprocessing(
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..32,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
        seed_b in proptest::collection::vec(-20_000i32..20_000, 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let bias: Vec<i32> = (0..n).map(|i| seed_b[i % seed_b.len()]).collect();
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        // Epilogue mirroring IntLinear: bias add + divide + clamp to int8.
        let epilogue = |acc: i32, c: usize| -> i8 {
            ((i64::from(acc) + i64::from(bias[c])) / 37).clamp(-127, 127) as i8
        };
        let fused = gemm_i8_fused(&x, &packed, &mut scratch, epilogue).expect("fused");
        let naive = x.matmul_i32(&w).expect("naive");
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(fused.row(r)[c], epilogue(naive.row(r)[c], c));
            }
        }
    }

    // Nibble panels gathered straight from the v2 `pack_i4` byte stream
    // must equal the unpack-then-pack panels bit for bit (the zero-copy
    // load path's correctness contract), and compute the same GEMM.
    #[test]
    fn panels_from_v2_bytes_match_unpacked_packing(
        m in 1usize..10,
        k in 1usize..70,
        n in 1usize..40,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i4(), 1..64),
    ) {
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let bytes = pack4::pack_i4(w.as_slice()).expect("pack_i4");
        let from_bytes = PackedWeights::from_v2_nibble_bytes(&bytes, k, n).expect("from bytes");
        prop_assert_eq!(&from_bytes, &PackedWeights::pack_nibble(&w).expect("pack_nibble"));
        let wide_bytes: Vec<u8> = w.as_slice().iter().map(|&c| c as u8).collect();
        let wide = PackedWeights::pack_wide_from_bytes(&wide_bytes, k, n).expect("wide bytes");
        prop_assert_eq!(&wide, &PackedWeights::pack(&w).expect("pack"));
        let mut scratch = GemmScratch::new();
        let naive = x.matmul_i32(&w).expect("naive");
        prop_assert_eq!(&gemm_i8_i32(&x, &from_bytes, &mut scratch).expect("gemm"), &naive);
        prop_assert_eq!(&gemm_i8_i32(&x, &wide, &mut scratch).expect("gemm wide"), &naive);
    }

    // Every host kernel's requantize epilogue is bit-identical to the
    // 128-bit scalar reference over the whole SIMD-exact envelope
    // (Q1.30 multipliers, shifts 0..=62, clamps 0..=127), including the
    // extreme accumulator/bias corners where the i64 product peaks.
    #[test]
    fn requant_kernels_match_scalar_reference(
        accs in proptest::collection::vec(proptest::num::i32::ANY, 0..70),
        biases in proptest::collection::vec(proptest::num::i32::ANY, 1..70),
        multiplier in 0i64..=(1i64 << 30),
        shift in 0i32..=62,
        clamp in 0i32..=127,
    ) {
        let params = RequantParams { multiplier, shift, clamp };
        prop_assert!(params.simd_exact());
        let len = accs.len();
        let bias: Vec<i32> = (0..len).map(|i| biases[i % biases.len()]).collect();
        // Splice in the worst-case corners so every run stresses them.
        let mut accs = accs;
        for (i, v) in [i32::MIN, i32::MAX, 0].into_iter().enumerate() {
            if let Some(slot) = accs.get_mut(i) {
                *slot = v;
            }
        }
        let mut reference = vec![0i8; len];
        kernels::scalar::requant_row(&accs, &bias, params, &mut reference);
        for kind in kernels::available() {
            let mut got = vec![0i8; len];
            (kernels::dispatch_for(kind).requant)(&accs, &bias, params, &mut got);
            prop_assert_eq!(&got, &reference, "requant diverges on {}", kind.name());
        }
    }

    // The fused requant GEMM equals applying the scalar reference to the
    // raw accumulators, on every kernel.
    #[test]
    fn fused_requant_gemm_matches_reference_across_kernels(
        m in 1usize..8,
        k in 1usize..50,
        n in 1usize..40,
        seed_x in proptest::collection::vec(i8_full(), 1..64),
        seed_w in proptest::collection::vec(i8_full(), 1..64),
        seed_b in proptest::collection::vec(-100_000i32..100_000, 1..64),
        multiplier in 0i64..=(1i64 << 30),
        shift in 0i32..=62,
        clamp in 1i32..=127,
    ) {
        let _guard = kernel_lock();
        let params = RequantParams { multiplier, shift, clamp };
        let x = build(&seed_x, m, k);
        let w = build(&seed_w, k, n);
        let bias: Vec<i32> = (0..n).map(|i| seed_b[i % seed_b.len()]).collect();
        let packed = PackedWeights::pack(&w).expect("pack");
        let mut scratch = GemmScratch::new();
        let raw = gemm_i8_i32(&x, &packed, &mut scratch).expect("raw");
        let mut expected = vec![0i8; m * n];
        for r in 0..m {
            kernels::scalar::requant_row(
                raw.row(r),
                &bias,
                params,
                &mut expected[r * n..(r + 1) * n],
            );
        }
        for kind in kernels::available() {
            kernels::force(kind);
            let got = gemm_i8_requant(&x, &packed, &bias, params, &mut scratch).expect("fused");
            prop_assert_eq!(got.as_slice(), expected.as_slice(), "diverges on {}", kind.name());
        }
        kernels::force(kernels::best_available());
    }

    #[test]
    fn exact_block_multiples_are_also_exact(
        mb in 1usize..5,
        kb in 1usize..4,
        nb in 1usize..4,
        seed in proptest::collection::vec(i8_full(), 1..64),
    ) {
        // Shapes that are exact multiples of the MR × NR tile.
        let (m, k, n) = (mb * MR, kb * 32, nb * NR);
        let x = build(&seed, m, k);
        let w = build(&seed, k, n);
        let packed = PackedWeights::pack(&w).unwrap();
        let mut scratch = GemmScratch::new();
        prop_assert_eq!(
            gemm_i8_i32(&x, &packed, &mut scratch).expect("blocked"),
            x.matmul_i32(&w).expect("naive")
        );
    }
}

/// Deterministic cross-kernel edge cases: empty shapes in every dimension,
/// odd-k remainders with single rows/columns, and all-padding (all-zero)
/// activation blocks such as fully-masked sequence tails.
#[test]
fn cross_kernel_edge_shapes_and_all_padding_blocks() {
    let _guard = kernel_lock();
    let shapes = [
        (0usize, 0usize, 0usize),
        (0, 4, 4),
        (4, 0, 4),
        (4, 4, 0),
        (1, 1, 1),
        (1, 7, 1),
        (MR, 9, NR),
        (MR + 1, 31, NR + 1),
        (2 * MR, 64, 2 * NR),
        (3, 33, 65),
    ];
    for &(m, k, n) in &shapes {
        let x = IntTensor::from_vec(
            (0..m * k).map(|i| ((i % 251) as i64 - 125) as i8).collect(),
            &[m, k],
        )
        .expect("x");
        // All-padding activations: a fully masked row block must still be
        // bit-identical (and produce all-zero accumulators).
        let zeros = IntTensor::<i8>::zeros(&[m, k]);
        let w8 = IntTensor::from_vec(
            (0..k * n).map(|i| ((i % 255) as i64 - 127) as i8).collect(),
            &[k, n],
        )
        .expect("w8");
        let w4 = IntTensor::from_vec(
            (0..k * n).map(|i| ((i % 16) as i64 - 8) as i8).collect(),
            &[k, n],
        )
        .expect("w4");
        let wide = PackedWeights::pack(&w8).expect("pack");
        let nib = PackedWeights::pack_nibble(&w4).expect("pack nibble");
        let mut scratch = GemmScratch::new();
        for kind in kernels::available() {
            kernels::force(kind);
            for x in [&x, &zeros] {
                assert_eq!(
                    gemm_i8_i32(x, &wide, &mut scratch).expect("wide"),
                    x.matmul_i32(&w8).expect("naive"),
                    "wide ({m},{k},{n}) on {}",
                    kind.name()
                );
                assert_eq!(
                    gemm_i8_i32(x, &nib, &mut scratch).expect("nibble"),
                    x.matmul_i32(&w4).expect("naive"),
                    "nibble ({m},{k},{n}) on {}",
                    kind.name()
                );
            }
        }
    }
    kernels::force(kernels::best_available());
}

/// This container/CI lane must actually exercise what it claims: scalar is
/// always present, and on x86_64 the SSE2 baseline path must be available.
#[test]
fn expected_kernels_are_available() {
    let available = kernels::available();
    assert!(available.contains(&KernelKind::Scalar));
    if cfg!(target_arch = "x86_64") {
        assert!(available.contains(&KernelKind::Sse2));
    }
}
