//! Property tests pinning the 4-bit nibble packing to the unpacked `i8`
//! reference: `unpack(pack(x)) == x` for every code sequence in the signed
//! nibble range, at exactly half the storage (rounded up), with corrupt
//! byte counts rejected.

use fqbert_tensor::{pack_i4, unpack_i4};
use proptest::prelude::*;

fn i4() -> impl Strategy<Value = i8> {
    -8i8..=7
}

proptest! {
    #[test]
    fn pack_round_trips_against_the_unpacked_reference(
        codes in proptest::collection::vec(i4(), 0..257),
    ) {
        let packed = pack_i4(&codes).expect("in-range codes pack");
        prop_assert_eq!(packed.len(), codes.len().div_ceil(2));
        let unpacked = unpack_i4(&packed, codes.len()).expect("unpack");
        prop_assert_eq!(unpacked, codes);
    }

    #[test]
    fn out_of_range_codes_never_pack(
        prefix in proptest::collection::vec(i4(), 0..16),
        magnitude in 8i8..=127,
        negative in 0u8..=1,
    ) {
        // Covers both out-of-range sides: 8..=127 and -9..=-128.
        let bad = if negative == 1 { -magnitude - 1 } else { magnitude };
        let mut codes = prefix;
        codes.push(bad);
        prop_assert!(pack_i4(&codes).is_err());
    }

    #[test]
    fn wrong_byte_counts_never_unpack(
        codes in proptest::collection::vec(i4(), 2..64),
    ) {
        let packed = pack_i4(&codes).expect("pack");
        // One byte short and one byte long are both structural errors.
        prop_assert!(unpack_i4(&packed[..packed.len() - 1], codes.len()).is_err());
        let mut long = packed.clone();
        long.push(0);
        prop_assert!(unpack_i4(&long, codes.len()).is_err());
    }
}
