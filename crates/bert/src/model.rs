//! The BERT encoder model and its graph-bound forward pass.

use crate::config::BertConfig;
use crate::hooks::{ForwardHook, Site, SiteKind};
use crate::layers::{EncoderLayerParams, LayerNormParams, Linear};
use fqbert_autograd::{AutogradError, Graph, VarId};
use fqbert_nlp::Example;
use fqbert_tensor::{RngSource, Tensor};

/// The full BERT classification model (Fig. 1 of the paper): embeddings,
/// a stack of encoder layers and a task classifier operating on the `[CLS]`
/// position.
///
/// Parameters are plain tensors owned by the model; every training step binds
/// them onto a fresh autograd [`Graph`] with [`BertModel::bind`].
#[derive(Debug, Clone, PartialEq)]
pub struct BertModel {
    config: BertConfig,
    /// Word-embedding table `[vocab, hidden]`.
    pub word_embeddings: Tensor,
    /// Positional-embedding table `[max_len, hidden]`.
    pub position_embeddings: Tensor,
    /// Segment (token-type) embedding table `[type_vocab, hidden]`.
    pub segment_embeddings: Tensor,
    /// Layer norm applied to the embedding sum.
    pub embedding_layer_norm: LayerNormParams,
    /// Encoder layers.
    pub encoder_layers: Vec<EncoderLayerParams>,
    /// Classification head applied to the `[CLS]` representation.
    pub classifier: Linear,
}

impl BertModel {
    /// Creates a randomly initialised model for `config`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`BertConfig::validate`]).
    pub fn new(config: BertConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid BERT configuration: {e}"));
        let mut rng = RngSource::seed_from_u64(seed);
        let emb_std = 0.02;
        let word_embeddings = rng.normal_tensor(&[config.vocab_size, config.hidden], 0.0, emb_std);
        let position_embeddings = rng.normal_tensor(&[config.max_len, config.hidden], 0.0, emb_std);
        let segment_embeddings =
            rng.normal_tensor(&[config.type_vocab_size, config.hidden], 0.0, emb_std);
        let embedding_layer_norm = LayerNormParams::new(config.hidden);
        let encoder_layers = (0..config.layers)
            .map(|_| EncoderLayerParams::new(&mut rng, config.hidden, config.intermediate))
            .collect();
        let classifier = Linear::new(&mut rng, config.hidden, config.num_classes);
        Self {
            config,
            word_embeddings,
            position_embeddings,
            segment_embeddings,
            embedding_layer_norm,
            encoder_layers,
            classifier,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|t| t.numel()).sum()
    }

    /// All parameters in a fixed, documented order (embeddings, embedding
    /// layer norm, encoder layers in order, classifier).
    pub fn params(&self) -> Vec<&Tensor> {
        let mut out: Vec<&Tensor> = vec![
            &self.word_embeddings,
            &self.position_embeddings,
            &self.segment_embeddings,
            &self.embedding_layer_norm.gamma,
            &self.embedding_layer_norm.beta,
        ];
        for layer in &self.encoder_layers {
            out.extend([
                &layer.query.weight,
                &layer.query.bias,
                &layer.key.weight,
                &layer.key.bias,
                &layer.value.weight,
                &layer.value.bias,
                &layer.attn_output.weight,
                &layer.attn_output.bias,
                &layer.attn_layer_norm.gamma,
                &layer.attn_layer_norm.beta,
                &layer.ffn1.weight,
                &layer.ffn1.bias,
                &layer.ffn2.weight,
                &layer.ffn2.bias,
                &layer.ffn_layer_norm.gamma,
                &layer.ffn_layer_norm.beta,
            ]);
        }
        out.push(&self.classifier.weight);
        out.push(&self.classifier.bias);
        out
    }

    /// Mutable access to all parameters, in the same order as
    /// [`BertModel::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = vec![
            &mut self.word_embeddings,
            &mut self.position_embeddings,
            &mut self.segment_embeddings,
            &mut self.embedding_layer_norm.gamma,
            &mut self.embedding_layer_norm.beta,
        ];
        for layer in &mut self.encoder_layers {
            out.extend([
                &mut layer.query.weight,
                &mut layer.query.bias,
                &mut layer.key.weight,
                &mut layer.key.bias,
                &mut layer.value.weight,
                &mut layer.value.bias,
                &mut layer.attn_output.weight,
                &mut layer.attn_output.bias,
                &mut layer.attn_layer_norm.gamma,
                &mut layer.attn_layer_norm.beta,
                &mut layer.ffn1.weight,
                &mut layer.ffn1.bias,
                &mut layer.ffn2.weight,
                &mut layer.ffn2.bias,
                &mut layer.ffn_layer_norm.gamma,
                &mut layer.ffn_layer_norm.beta,
            ]);
        }
        out.push(&mut self.classifier.weight);
        out.push(&mut self.classifier.bias);
        out
    }

    /// Human-readable names of the parameters, aligned with
    /// [`BertModel::params`]. Used by the QAT exporter and the compression
    /// accounting.
    pub fn param_names(&self) -> Vec<String> {
        let mut out = vec![
            "embeddings.word".to_string(),
            "embeddings.position".to_string(),
            "embeddings.segment".to_string(),
            "embeddings.layer_norm.gamma".to_string(),
            "embeddings.layer_norm.beta".to_string(),
        ];
        for i in 0..self.encoder_layers.len() {
            for name in [
                "attention.query.weight",
                "attention.query.bias",
                "attention.key.weight",
                "attention.key.bias",
                "attention.value.weight",
                "attention.value.bias",
                "attention.output.weight",
                "attention.output.bias",
                "attention.layer_norm.gamma",
                "attention.layer_norm.beta",
                "ffn.intermediate.weight",
                "ffn.intermediate.bias",
                "ffn.output.weight",
                "ffn.output.bias",
                "ffn.layer_norm.gamma",
                "ffn.layer_norm.beta",
            ] {
                out.push(format!("encoder.{i}.{name}"));
            }
        }
        out.push("classifier.weight".to_string());
        out.push("classifier.bias".to_string());
        out
    }

    /// Registers every parameter on `graph` and returns the bound model that
    /// can run forward passes on that graph.
    pub fn bind(&self, graph: &mut Graph) -> BoundBert {
        let param_ids: Vec<VarId> = self
            .params()
            .into_iter()
            .map(|p| graph.param(p.clone()))
            .collect();
        BoundBert {
            config: self.config.clone(),
            param_ids,
        }
    }
}

/// A [`BertModel`] whose parameters have been registered on a specific
/// autograd graph. Layout of `param_ids` matches [`BertModel::params`].
#[derive(Debug)]
pub struct BoundBert {
    config: BertConfig,
    param_ids: Vec<VarId>,
}

/// Number of parameter tensors per encoder layer in the flattened ordering.
const PARAMS_PER_LAYER: usize = 16;
/// Number of parameter tensors before the first encoder layer.
const EMBEDDING_PARAMS: usize = 5;

impl BoundBert {
    /// Variable ids of all parameters, aligned with [`BertModel::params`].
    pub fn param_ids(&self) -> &[VarId] {
        &self.param_ids
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    fn layer_param(&self, layer: usize, offset: usize) -> VarId {
        self.param_ids[EMBEDDING_PARAMS + layer * PARAMS_PER_LAYER + offset]
    }

    /// Runs the forward pass for one encoded example, returning the logits
    /// node of shape `[1, num_classes]`.
    ///
    /// Padding tokens are stripped using the example's attention mask, so no
    /// attention masking is required inside the encoder.
    ///
    /// # Errors
    ///
    /// Returns an error if the example is empty or longer than the model's
    /// maximum sequence length, or if a graph operation fails.
    pub fn forward(
        &self,
        graph: &mut Graph,
        example: &Example,
        hook: &mut dyn ForwardHook,
    ) -> Result<VarId, AutogradError> {
        let real_len = example
            .attention_mask
            .iter()
            .take_while(|&&m| m == 1)
            .count();
        let token_ids = &example.token_ids[..real_len];
        let segment_ids = &example.segment_ids[..real_len];
        self.forward_tokens(graph, token_ids, segment_ids, hook)
    }

    /// Runs the forward pass on raw (unpadded) token and segment ids.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence is empty or longer than the model's
    /// maximum length, or if a graph operation fails.
    pub fn forward_tokens(
        &self,
        graph: &mut Graph,
        token_ids: &[usize],
        segment_ids: &[usize],
        hook: &mut dyn ForwardHook,
    ) -> Result<VarId, AutogradError> {
        if token_ids.is_empty() {
            return Err(AutogradError::InvalidArgument(
                "cannot run BERT on an empty token sequence".to_string(),
            ));
        }
        if token_ids.len() > self.config.max_len {
            return Err(AutogradError::InvalidArgument(format!(
                "sequence of {} tokens exceeds max_len {}",
                token_ids.len(),
                self.config.max_len
            )));
        }
        if segment_ids.len() != token_ids.len() {
            return Err(AutogradError::InvalidArgument(format!(
                "{} segment ids for {} tokens",
                segment_ids.len(),
                token_ids.len()
            )));
        }
        let seq_len = token_ids.len();
        let eps = self.config.layer_norm_eps;

        // --- Embeddings -----------------------------------------------------
        let word_table = hook.on_weight(
            graph,
            self.param_ids[0],
            Site::global(SiteKind::EmbeddingTable),
        );
        let pos_table = hook.on_weight(
            graph,
            self.param_ids[1],
            Site::global(SiteKind::EmbeddingTable),
        );
        let seg_table = hook.on_weight(
            graph,
            self.param_ids[2],
            Site::global(SiteKind::EmbeddingTable),
        );
        let word = graph.embedding(word_table, token_ids)?;
        let positions: Vec<usize> = (0..seq_len).collect();
        let pos = graph.embedding(pos_table, &positions)?;
        let seg = graph.embedding(seg_table, segment_ids)?;
        let sum = graph.add(word, pos)?;
        let sum = graph.add(sum, seg)?;
        let emb = graph.layer_norm(sum, self.param_ids[3], self.param_ids[4], eps)?;
        let mut hidden = hook.on_activation(graph, emb, Site::global(SiteKind::EmbeddingOutput));

        // --- Encoder stack ---------------------------------------------------
        for layer in 0..self.config.layers {
            hidden = self.encoder_layer(graph, hidden, layer, seq_len, hook)?;
        }

        // --- Classifier on the [CLS] position --------------------------------
        let transposed = graph.transpose2(hidden)?;
        let cls_col = graph.slice_cols(transposed, 0, 1)?;
        let cls = graph.transpose2(cls_col)?;
        let w = hook.on_weight(
            graph,
            self.param_ids[self.param_ids.len() - 2],
            Site::global(SiteKind::ClassifierWeight),
        );
        let b = self.param_ids[self.param_ids.len() - 1];
        let logits = graph.matmul(cls, w)?;
        let logits = graph.add_bias(logits, b)?;
        Ok(hook.on_activation(graph, logits, Site::global(SiteKind::Logits)))
    }

    /// One encoder layer: multi-head self-attention, `Add & LN`, FFN,
    /// `Add & LN`.
    fn encoder_layer(
        &self,
        graph: &mut Graph,
        input: VarId,
        layer: usize,
        seq_len: usize,
        hook: &mut dyn ForwardHook,
    ) -> Result<VarId, AutogradError> {
        let cfg = &self.config;
        let head_dim = cfg.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let eps = cfg.layer_norm_eps;
        let input = hook.on_activation(graph, input, Site::layer(layer, SiteKind::LayerInput));

        // Projections.
        let wq = hook.on_weight(
            graph,
            self.layer_param(layer, 0),
            Site::layer(layer, SiteKind::QueryWeight),
        );
        let bq = self.layer_param(layer, 1);
        let wk = hook.on_weight(
            graph,
            self.layer_param(layer, 2),
            Site::layer(layer, SiteKind::KeyWeight),
        );
        let bk = self.layer_param(layer, 3);
        let wv = hook.on_weight(
            graph,
            self.layer_param(layer, 4),
            Site::layer(layer, SiteKind::ValueWeight),
        );
        let bv = self.layer_param(layer, 5);

        let q = graph.matmul(input, wq)?;
        let q = graph.add_bias(q, bq)?;
        let q = hook.on_activation(graph, q, Site::layer(layer, SiteKind::QActivation));
        let k = graph.matmul(input, wk)?;
        let k = graph.add_bias(k, bk)?;
        let k = hook.on_activation(graph, k, Site::layer(layer, SiteKind::KActivation));
        let v = graph.matmul(input, wv)?;
        let v = graph.add_bias(v, bv)?;
        let v = hook.on_activation(graph, v, Site::layer(layer, SiteKind::VActivation));

        // Scaled dot-product attention per head (Fig. 1, right panel).
        let mut head_contexts = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let lo = h * head_dim;
            let hi = lo + head_dim;
            let qh = graph.slice_cols(q, lo, hi)?;
            let kh = graph.slice_cols(k, lo, hi)?;
            let vh = graph.slice_cols(v, lo, hi)?;
            let scores = graph.matmul_transposed(qh, kh)?;
            let scores = graph.scale(scores, scale)?;
            let scores =
                hook.on_activation(graph, scores, Site::layer(layer, SiteKind::AttentionScores));
            let probs = graph.softmax_rows(scores)?;
            let probs =
                hook.on_activation(graph, probs, Site::layer(layer, SiteKind::AttentionProbs));
            let context = graph.matmul(probs, vh)?;
            debug_assert_eq!(graph.value(context).dims(), &[seq_len, head_dim]);
            head_contexts.push(context);
        }
        let context = graph.concat_cols(&head_contexts)?;

        // Attention output projection + Add & LN.
        let wo = hook.on_weight(
            graph,
            self.layer_param(layer, 6),
            Site::layer(layer, SiteKind::AttentionOutputWeight),
        );
        let bo = self.layer_param(layer, 7);
        let attn_out = graph.matmul(context, wo)?;
        let attn_out = graph.add_bias(attn_out, bo)?;
        let attn_out = hook.on_activation(
            graph,
            attn_out,
            Site::layer(layer, SiteKind::AttentionOutput),
        );
        let residual = graph.add(input, attn_out)?;
        let normed = graph.layer_norm(
            residual,
            self.layer_param(layer, 8),
            self.layer_param(layer, 9),
            eps,
        )?;
        let normed =
            hook.on_activation(graph, normed, Site::layer(layer, SiteKind::LayerNormOutput));

        // Feed-forward network + Add & LN.
        let w1 = hook.on_weight(
            graph,
            self.layer_param(layer, 10),
            Site::layer(layer, SiteKind::Ffn1Weight),
        );
        let b1 = self.layer_param(layer, 11);
        let w2 = hook.on_weight(
            graph,
            self.layer_param(layer, 12),
            Site::layer(layer, SiteKind::Ffn2Weight),
        );
        let b2 = self.layer_param(layer, 13);
        let ffn_hidden = graph.matmul(normed, w1)?;
        let ffn_hidden = graph.add_bias(ffn_hidden, b1)?;
        let ffn_hidden = graph.gelu(ffn_hidden)?;
        let ffn_hidden =
            hook.on_activation(graph, ffn_hidden, Site::layer(layer, SiteKind::FfnHidden));
        let ffn_out = graph.matmul(ffn_hidden, w2)?;
        let ffn_out = graph.add_bias(ffn_out, b2)?;
        let ffn_out = hook.on_activation(graph, ffn_out, Site::layer(layer, SiteKind::FfnOutput));
        let residual = graph.add(normed, ffn_out)?;
        let out = graph.layer_norm(
            residual,
            self.layer_param(layer, 14),
            self.layer_param(layer, 15),
            eps,
        )?;
        Ok(hook.on_activation(graph, out, Site::layer(layer, SiteKind::LayerNormOutput)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHook;

    fn example(tokens: &[usize], label: usize, max_len: usize) -> Example {
        let mut token_ids = tokens.to_vec();
        let real = token_ids.len();
        token_ids.resize(max_len, 0);
        let mut mask = vec![1usize; real];
        mask.resize(max_len, 0);
        Example {
            token_ids,
            segment_ids: vec![0; max_len],
            attention_mask: mask,
            label,
        }
    }

    fn tiny_model() -> BertModel {
        BertModel::new(BertConfig::tiny(50, 16, 2), 42)
    }

    #[test]
    fn parameter_count_matches_structure() {
        let model = tiny_model();
        let cfg = model.config().clone();
        let emb =
            (cfg.vocab_size + cfg.max_len + cfg.type_vocab_size) * cfg.hidden + 2 * cfg.hidden;
        let per_layer = 4 * (cfg.hidden * cfg.hidden + cfg.hidden)
            + (cfg.hidden * cfg.intermediate + cfg.intermediate)
            + (cfg.intermediate * cfg.hidden + cfg.hidden)
            + 4 * cfg.hidden;
        let head = cfg.hidden * cfg.num_classes + cfg.num_classes;
        assert_eq!(model.num_params(), emb + cfg.layers * per_layer + head);
        assert_eq!(model.params().len(), model.param_names().len());
        assert_eq!(model.params().len(), 5 + cfg.layers * 16 + 2);
    }

    #[test]
    fn forward_produces_logits_of_right_shape() {
        let model = tiny_model();
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let ex = example(&[2, 7, 9, 3], 1, 16);
        let logits = bound.forward(&mut graph, &ex, &mut NoopHook).unwrap();
        assert_eq!(graph.value(logits).dims(), &[1, 2]);
        assert!(graph.value(logits).as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let model = tiny_model();
        let ex = example(&[2, 5, 6, 8, 3], 0, 16);
        let run = || {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, &ex, &mut NoopHook).unwrap();
            graph.value(logits).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn padding_does_not_change_logits() {
        // Because padding is stripped via the attention mask, adding extra
        // [PAD] tokens must not change the output.
        let model = tiny_model();
        let short = example(&[2, 5, 6, 3], 0, 8);
        let long = example(&[2, 5, 6, 3], 0, 16);
        let run = |ex: &Example| {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, ex, &mut NoopHook).unwrap();
            graph.value(logits).clone()
        };
        assert!(run(&short).allclose(&run(&long), 1e-5));
    }

    #[test]
    fn rejects_empty_and_overlong_sequences() {
        let model = tiny_model();
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        assert!(bound
            .forward_tokens(&mut graph, &[], &[], &mut NoopHook)
            .is_err());
        let too_long: Vec<usize> = vec![2; 17];
        let segs = vec![0usize; 17];
        assert!(bound
            .forward_tokens(&mut graph, &too_long, &segs, &mut NoopHook)
            .is_err());
        assert!(bound
            .forward_tokens(&mut graph, &[2, 3], &[0], &mut NoopHook)
            .is_err());
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let model = tiny_model();
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let ex = example(&[2, 7, 9, 11, 3], 1, 16);
        let logits = bound.forward(&mut graph, &ex, &mut NoopHook).unwrap();
        let loss = graph.cross_entropy_logits(logits, &[ex.label]).unwrap();
        graph.backward(loss).unwrap();
        // Every weight matrix must receive a gradient (embedding tables only
        // receive gradients at used rows, which still counts).
        let names = model.param_names();
        for (i, &pid) in bound.param_ids().iter().enumerate() {
            // The segment table only gets a gradient if segment 1 appears;
            // position/word tables always do. Skip segment embeddings.
            if names[i].contains("segment") {
                continue;
            }
            assert!(
                graph.grad(pid).is_some(),
                "parameter {} received no gradient",
                names[i]
            );
        }
    }

    #[test]
    fn hooks_see_weights_and_activations() {
        #[derive(Default)]
        struct CountingHook {
            weights: usize,
            activations: usize,
        }
        impl ForwardHook for CountingHook {
            fn on_weight(&mut self, _g: &mut Graph, id: VarId, _s: Site) -> VarId {
                self.weights += 1;
                id
            }
            fn on_activation(&mut self, _g: &mut Graph, id: VarId, _s: Site) -> VarId {
                self.activations += 1;
                id
            }
        }
        let model = tiny_model();
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let ex = example(&[2, 4, 3], 0, 16);
        let mut hook = CountingHook::default();
        bound.forward(&mut graph, &ex, &mut hook).unwrap();
        // 3 embedding tables + per layer (q,k,v,o,ffn1,ffn2) + classifier.
        assert_eq!(hook.weights, 3 + model.config().layers * 6 + 1);
        assert!(hook.activations > 0);
    }
}
