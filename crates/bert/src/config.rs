//! BERT architecture configuration.

/// Hyper-parameters of a BERT encoder stack.
///
/// The accuracy experiments use the small presets (trainable from scratch on
/// a laptop-scale budget); the accelerator latency and resource experiments
/// use [`BertConfig::bert_base`], which matches the 12-layer, 768-hidden,
/// 12-head model the paper deploys (only its *shapes* are needed there).
#[derive(Debug, Clone, PartialEq)]
pub struct BertConfig {
    /// Vocabulary size (word-piece vocabulary in the paper, synthetic word
    /// vocabulary here).
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of stacked encoder layers.
    pub layers: usize,
    /// Number of self-attention heads. Must divide `hidden`.
    pub heads: usize,
    /// FFN intermediate dimension (4 × hidden in standard BERT).
    pub intermediate: usize,
    /// Maximum sequence length (positional-embedding table size).
    pub max_len: usize,
    /// Number of token-type (segment) embeddings.
    pub type_vocab_size: usize,
    /// Number of output classes of the task head.
    pub num_classes: usize,
    /// Layer-norm epsilon.
    pub layer_norm_eps: f32,
}

impl BertConfig {
    /// A 2-layer, 64-hidden model: the workhorse for the quantization
    /// accuracy experiments (trainable in seconds).
    pub fn tiny(vocab_size: usize, max_len: usize, num_classes: usize) -> Self {
        Self {
            vocab_size,
            hidden: 64,
            layers: 2,
            heads: 2,
            intermediate: 128,
            max_len,
            type_vocab_size: 2,
            num_classes,
            layer_norm_eps: 1e-5,
        }
    }

    /// A 4-layer, 128-hidden model (between tiny and base) used for ablation
    /// and robustness checks.
    pub fn mini(vocab_size: usize, max_len: usize, num_classes: usize) -> Self {
        Self {
            vocab_size,
            hidden: 128,
            layers: 4,
            heads: 4,
            intermediate: 256,
            max_len,
            type_vocab_size: 2,
            num_classes,
            layer_norm_eps: 1e-5,
        }
    }

    /// The BERT-base shape used by the paper's deployment experiments:
    /// 12 layers, 768 hidden, 12 heads, 3072 intermediate, 30 522 word
    /// pieces, sequence length 128 and a 2-class task head (SST-2).
    pub fn bert_base() -> Self {
        Self {
            vocab_size: 30_522,
            hidden: 768,
            layers: 12,
            heads: 12,
            intermediate: 3_072,
            max_len: 128,
            type_vocab_size: 2,
            num_classes: 2,
            layer_norm_eps: 1e-12,
        }
    }

    /// Head dimension `hidden / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.heads > 0 && self.hidden.is_multiple_of(self.heads),
            "hidden ({}) must be divisible by heads ({})",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.layers == 0 || self.heads == 0 {
            return Err("hidden, layers and heads must be non-zero".to_string());
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "hidden ({}) must be divisible by heads ({})",
                self.hidden, self.heads
            ));
        }
        if self.vocab_size < 5 {
            return Err("vocabulary must contain at least the special tokens".to_string());
        }
        if self.max_len < 3 {
            return Err("max_len must be at least 3".to_string());
        }
        if self.num_classes < 2 {
            return Err("a classification head needs at least 2 classes".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(BertConfig::tiny(100, 32, 2).validate().is_ok());
        assert!(BertConfig::mini(100, 32, 3).validate().is_ok());
        assert!(BertConfig::bert_base().validate().is_ok());
    }

    #[test]
    fn bert_base_matches_published_shape() {
        let cfg = BertConfig::bert_base();
        assert_eq!(cfg.hidden, 768);
        assert_eq!(cfg.layers, 12);
        assert_eq!(cfg.heads, 12);
        assert_eq!(cfg.intermediate, 3072);
        assert_eq!(cfg.head_dim(), 64);
        assert_eq!(cfg.max_len, 128);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = BertConfig::tiny(100, 32, 2);
        cfg.heads = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = BertConfig::tiny(100, 32, 2);
        cfg.num_classes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = BertConfig::tiny(100, 32, 2);
        cfg.vocab_size = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn head_dim_panics_on_mismatch() {
        let mut cfg = BertConfig::tiny(100, 32, 2);
        cfg.heads = 7;
        let _ = cfg.head_dim();
    }
}
