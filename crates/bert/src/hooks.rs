//! Forward-pass hook points used to inject quantization behaviour.
//!
//! The float model and the quantization-aware-training wrapper are decoupled:
//! [`crate::BertModel`] calls [`ForwardHook::on_weight`] on every weight
//! right before it is used and [`ForwardHook::on_activation`] on every
//! activation right after it is produced, identifying the location with a
//! [`Site`]. The QAT wrapper in `fqbert-core` implements the hook with fake
//! quantization and EMA observers; the plain float model uses [`NoopHook`].

use fqbert_autograd::{Graph, VarId};

/// What kind of tensor a hook site refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiteKind {
    /// The token / position / segment embedding tables.
    EmbeddingTable,
    /// Output of the embedding block (after layer norm).
    EmbeddingOutput,
    /// Weight of the query projection.
    QueryWeight,
    /// Weight of the key projection.
    KeyWeight,
    /// Weight of the value projection.
    ValueWeight,
    /// Weight of the attention output projection.
    AttentionOutputWeight,
    /// Weight of the first FFN matrix.
    Ffn1Weight,
    /// Weight of the second FFN matrix.
    Ffn2Weight,
    /// Weight of the classifier head.
    ClassifierWeight,
    /// Activation entering an encoder layer.
    LayerInput,
    /// Query projection output (activation).
    QActivation,
    /// Key projection output (activation).
    KActivation,
    /// Value projection output (activation).
    VActivation,
    /// Attention score matrix `QKᵀ/√d` before softmax.
    AttentionScores,
    /// Attention probabilities after softmax.
    AttentionProbs,
    /// Attention context (`probs · V`, after the output projection).
    AttentionOutput,
    /// FFN hidden activation (after GELU).
    FfnHidden,
    /// FFN output activation.
    FfnOutput,
    /// Output of an `Add & LN` block.
    LayerNormOutput,
    /// Classifier logits.
    Logits,
}

/// Identifies one hook site: the tensor kind plus the encoder layer it
/// belongs to (`None` for embeddings and the classifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// Encoder layer index, or `None` outside the encoder stack.
    pub layer: Option<usize>,
    /// Which tensor within that layer.
    pub kind: SiteKind,
}

impl Site {
    /// A site inside encoder layer `layer`.
    pub fn layer(layer: usize, kind: SiteKind) -> Self {
        Self {
            layer: Some(layer),
            kind,
        }
    }

    /// A site outside the encoder stack (embeddings, classifier).
    pub fn global(kind: SiteKind) -> Self {
        Self { layer: None, kind }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.layer {
            Some(l) => write!(f, "layer{l}/{:?}", self.kind),
            None => write!(f, "global/{:?}", self.kind),
        }
    }
}

/// Hook invoked by the model's forward pass.
///
/// Both methods receive the graph, the variable holding the tensor and the
/// site, and return the variable to use downstream (possibly a new node, e.g.
/// a fake-quantized copy). The default implementations are identity.
pub trait ForwardHook {
    /// Called on every weight (and embedding table) right before use.
    fn on_weight(&mut self, _graph: &mut Graph, id: VarId, _site: Site) -> VarId {
        id
    }

    /// Called on every intermediate activation right after it is produced.
    fn on_activation(&mut self, _graph: &mut Graph, id: VarId, _site: Site) -> VarId {
        id
    }

    /// Whether the model should use the hook at all (lets expensive hooks be
    /// disabled wholesale); defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The identity hook used by the float baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl ForwardHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_tensor::Tensor;

    #[test]
    fn site_display_and_equality() {
        let a = Site::layer(3, SiteKind::QueryWeight);
        let b = Site::layer(3, SiteKind::QueryWeight);
        let c = Site::global(SiteKind::Logits);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.to_string().contains("layer3"));
        assert!(c.to_string().contains("global"));
    }

    #[test]
    fn noop_hook_is_identity() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(1.0));
        let mut hook = NoopHook;
        assert_eq!(hook.on_weight(&mut g, x, Site::global(SiteKind::Logits)), x);
        assert_eq!(
            hook.on_activation(&mut g, x, Site::global(SiteKind::Logits)),
            x
        );
        assert!(hook.enabled());
    }
}
