//! Floating-point BERT baseline: model, trainer and workload profile.
//!
//! This crate implements the BERT encoder architecture of Fig. 1 of the paper
//! (embeddings → N encoder layers of multi-head self-attention + FFN with
//! residual `Add & LN` → task classifier) on top of the `fqbert-autograd`
//! tape, so it can be both *trained from scratch* on the synthetic GLUE-like
//! tasks and *fine-tuned with the quantization function in the loop* (QAT,
//! implemented in `fqbert-core`).
//!
//! The crate deliberately exposes three things:
//!
//! * [`BertConfig`] — architecture hyper-parameters, with presets ranging
//!   from the `tiny` model used for the accuracy experiments to the
//!   `bert_base` shape used by the accelerator latency/resource experiments.
//! * [`BertModel`] / [`hooks::ForwardHook`] — the model itself plus the hook
//!   interface that lets the QAT wrapper fake-quantize weights and observe
//!   activations without this crate knowing anything about quantization.
//! * [`profile::ModelProfile`] — parameter and FLOP accounting for a config,
//!   used by the CPU/GPU/FPGA performance models.

pub mod config;
pub mod hooks;
pub mod layers;
pub mod model;
pub mod profile;
pub mod trainer;

pub use config::BertConfig;
pub use hooks::{ForwardHook, NoopHook, Site, SiteKind};
pub use layers::{LayerNormParams, Linear};
pub use model::{BertModel, BoundBert};
pub use profile::ModelProfile;
pub use trainer::{EvalReport, Trainer, TrainerConfig, TrainingHistory};
