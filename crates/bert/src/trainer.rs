//! Mini-batch trainer and evaluator for the BERT classifier.
//!
//! The paper first trains the task model for 3 epochs, then fine-tunes it
//! with the quantization function in the loop. Both phases use this trainer;
//! the only difference is the [`ForwardHook`] supplied (identity vs. the QAT
//! hook from `fqbert-core`).

use crate::hooks::{ForwardHook, NoopHook};
use crate::model::BertModel;
use fqbert_autograd::{Adam, AutogradError, Graph, Optimizer};
use fqbert_nlp::{accuracy, Example, TaskDataset};
use fqbert_tensor::{RngSource, Tensor};

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size (examples per optimizer step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Optional cap on the number of training examples used per epoch
    /// (useful for quick experiments); `None` uses the whole split.
    pub max_train_examples: Option<usize>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 0,
            max_train_examples: None,
        }
    }
}

/// Per-epoch record of the training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Development-set accuracy (percent) measured after each epoch.
    pub dev_accuracy: Vec<f64>,
}

impl TrainingHistory {
    /// Accuracy after the final epoch, if any epoch completed.
    pub fn final_dev_accuracy(&self) -> Option<f64> {
        self.dev_accuracy.last().copied()
    }
}

/// Result of evaluating a model on a set of examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Classification accuracy in percent.
    pub accuracy: f64,
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Number of examples evaluated.
    pub num_examples: usize,
}

/// Mini-batch trainer driving a [`BertModel`] with Adam.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `model` on the dataset's training split, evaluating on the dev
    /// split after every epoch.
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors (which indicate a configuration
    /// inconsistency between the model and the dataset).
    pub fn train(
        &self,
        model: &mut BertModel,
        dataset: &TaskDataset,
        hook: &mut dyn ForwardHook,
    ) -> Result<TrainingHistory, AutogradError> {
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut rng = RngSource::seed_from_u64(self.config.seed);
        let mut history = TrainingHistory::default();
        let limit = self
            .config
            .max_train_examples
            .unwrap_or(dataset.train.len())
            .min(dataset.train.len());

        for _epoch in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..dataset.train.len()).collect();
            rng.shuffle(&mut order);
            order.truncate(limit);

            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let batch: Vec<&Example> = chunk.iter().map(|&i| &dataset.train[i]).collect();
                let loss = self.train_step(model, &mut optimizer, &batch, hook)?;
                epoch_loss += loss;
                batches += 1;
            }
            history.epoch_loss.push(epoch_loss / batches.max(1) as f32);
            let eval = Self::evaluate(model, &dataset.dev, hook)?;
            history.dev_accuracy.push(eval.accuracy);
        }
        Ok(history)
    }

    /// Runs one optimizer step over a mini-batch and returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn train_step(
        &self,
        model: &mut BertModel,
        optimizer: &mut dyn Optimizer,
        batch: &[&Example],
        hook: &mut dyn ForwardHook,
    ) -> Result<f32, AutogradError> {
        if batch.is_empty() {
            return Ok(0.0);
        }
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let mut total_loss: Option<fqbert_autograd::VarId> = None;
        for example in batch {
            let logits = bound.forward(&mut graph, example, hook)?;
            let loss = graph.cross_entropy_logits(logits, &[example.label])?;
            total_loss = Some(match total_loss {
                Some(acc) => graph.add(acc, loss)?,
                None => loss,
            });
        }
        let total = total_loss.expect("batch is non-empty");
        let mean_loss = graph.scale(total, 1.0 / batch.len() as f32)?;
        let loss_value = graph.value(mean_loss).as_slice()[0];
        graph.backward(mean_loss)?;

        // Collect gradients in parameter order, substituting zeros for
        // parameters that did not participate (e.g. unused embedding tables).
        let grads: Vec<Tensor> = bound
            .param_ids()
            .iter()
            .enumerate()
            .map(|(i, &pid)| match graph.grad(pid) {
                Some(g) => g.clone(),
                None => Tensor::zeros(model.params()[i].dims()),
            })
            .collect();
        let grad_refs: Vec<&Tensor> = grads.iter().collect();
        let mut params = model.params_mut();
        optimizer.step(&mut params, &grad_refs);
        Ok(loss_value)
    }

    /// Evaluates a model on a set of examples with the given hook.
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn evaluate(
        model: &BertModel,
        examples: &[Example],
        hook: &mut dyn ForwardHook,
    ) -> Result<EvalReport, AutogradError> {
        if examples.is_empty() {
            return Ok(EvalReport {
                accuracy: 0.0,
                loss: 0.0,
                num_examples: 0,
            });
        }
        let mut predictions = Vec::with_capacity(examples.len());
        let mut labels = Vec::with_capacity(examples.len());
        let mut total_loss = 0.0f32;
        for example in examples {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, example, hook)?;
            let loss = graph.cross_entropy_logits(logits, &[example.label])?;
            total_loss += graph.value(loss).as_slice()[0];
            let pred = graph.value(logits).argmax()?;
            predictions.push(pred);
            labels.push(example.label);
        }
        Ok(EvalReport {
            accuracy: accuracy(&predictions, &labels),
            loss: total_loss / examples.len() as f32,
            num_examples: examples.len(),
        })
    }

    /// Convenience wrapper evaluating with the identity hook (float model).
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn evaluate_float(
        model: &BertModel,
        examples: &[Example],
    ) -> Result<EvalReport, AutogradError> {
        Self::evaluate(model, examples, &mut NoopHook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BertConfig;
    use fqbert_nlp::{Sst2Config, Sst2Generator};

    fn quick_dataset() -> TaskDataset {
        Sst2Generator::new(Sst2Config {
            train_size: 240,
            dev_size: 60,
            sentiment_words: 6,
            neutral_words: 10,
            min_words: 3,
            max_words: 6,
            negation_prob: 0.0,
            label_noise: 0.0,
            max_len: 12,
        })
        .generate(1)
    }

    #[test]
    fn training_improves_over_chance() {
        let dataset = quick_dataset();
        let mut model = BertModel::new(
            BertConfig {
                hidden: 32,
                layers: 1,
                heads: 2,
                intermediate: 64,
                ..BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes)
            },
            7,
        );
        let trainer = Trainer::new(TrainerConfig {
            epochs: 6,
            batch_size: 8,
            learning_rate: 3e-3,
            seed: 3,
            max_train_examples: None,
        });
        let history = trainer
            .train(&mut model, &dataset, &mut NoopHook)
            .expect("training should succeed");
        assert_eq!(history.epoch_loss.len(), 6);
        assert_eq!(history.dev_accuracy.len(), 6);
        let final_acc = history.final_dev_accuracy().unwrap();
        assert!(
            final_acc > 65.0,
            "expected the tiny model to beat chance clearly, got {final_acc}%"
        );
        assert!(
            history.epoch_loss.last().unwrap() < history.epoch_loss.first().unwrap(),
            "loss should decrease across epochs"
        );
    }

    #[test]
    fn evaluate_handles_empty_set() {
        let model = BertModel::new(BertConfig::tiny(20, 8, 2), 0);
        let report = Trainer::evaluate_float(&model, &[]).unwrap();
        assert_eq!(report.num_examples, 0);
        assert_eq!(report.accuracy, 0.0);
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let dataset = quick_dataset();
        let model = BertModel::new(
            BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes),
            11,
        );
        let report = Trainer::evaluate_float(&model, &dataset.dev).unwrap();
        assert!(report.accuracy >= 20.0 && report.accuracy <= 80.0);
        assert!(report.loss > 0.3);
    }

    #[test]
    fn train_step_on_empty_batch_is_noop() {
        let mut model = BertModel::new(BertConfig::tiny(20, 8, 2), 0);
        let trainer = Trainer::new(TrainerConfig::default());
        let mut opt = Adam::new(1e-3);
        let loss = trainer
            .train_step(&mut model, &mut opt, &[], &mut NoopHook)
            .unwrap();
        assert_eq!(loss, 0.0);
    }
}
