//! Parameter and FLOP accounting for a BERT configuration.
//!
//! The deployment experiments (Tables III and IV) need the *workload*, not
//! the weights: how many multiply–accumulate operations and how many weight
//! bytes one inference of a given BERT shape requires. [`ModelProfile`]
//! derives both from a [`BertConfig`] and a sequence length.

use crate::config::BertConfig;

/// Static workload profile of one BERT inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// The architecture profiled.
    pub config: BertConfig,
    /// Sequence length assumed for the activation-dependent terms.
    pub seq_len: usize,
    /// Parameters in the embedding tables.
    pub embedding_params: usize,
    /// Parameters in the encoder stack (weights + biases + layer norms).
    pub encoder_params: usize,
    /// Parameters in the classifier head.
    pub classifier_params: usize,
    /// Multiply–accumulate operations in one inference of the encoder stack.
    pub encoder_macs: u64,
    /// Multiply–accumulate operations in the task head.
    pub classifier_macs: u64,
}

impl ModelProfile {
    /// Profiles `config` at sequence length `seq_len`.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is zero or exceeds the configuration's `max_len`.
    pub fn new(config: &BertConfig, seq_len: usize) -> Self {
        assert!(
            seq_len > 0 && seq_len <= config.max_len,
            "sequence length {seq_len} out of range 1..={}",
            config.max_len
        );
        let h = config.hidden;
        let i = config.intermediate;
        let s = seq_len;
        let embedding_params =
            (config.vocab_size + config.max_len + config.type_vocab_size) * h + 2 * h;
        let per_layer_params = 4 * (h * h + h) + (h * i + i) + (i * h + h) + 4 * h;
        let encoder_params = config.layers * per_layer_params;
        let classifier_params = h * config.num_classes + config.num_classes;

        // MACs per encoder layer: Q/K/V/output projections, the two attention
        // matrix products, and the two FFN projections.
        let proj = 4 * s * h * h;
        let attention = 2 * s * s * h;
        let ffn = 2 * s * h * i;
        let per_layer_macs = (proj + attention + ffn) as u64;
        let encoder_macs = config.layers as u64 * per_layer_macs;
        let classifier_macs = (h * config.num_classes) as u64;

        Self {
            config: config.clone(),
            seq_len,
            embedding_params,
            encoder_params,
            classifier_params,
            encoder_macs,
            classifier_macs,
        }
    }

    /// Total parameter count.
    pub fn total_params(&self) -> usize {
        self.embedding_params + self.encoder_params + self.classifier_params
    }

    /// Total multiply–accumulate operations for one inference.
    pub fn total_macs(&self) -> u64 {
        self.encoder_macs + self.classifier_macs
    }

    /// Total floating-point operations (2 × MACs) for one inference.
    pub fn total_flops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Bytes of FP32 weights.
    pub fn weight_bytes_fp32(&self) -> u64 {
        4 * self.total_params() as u64
    }

    /// Bytes of encoder weights when linear-layer weights are stored at
    /// `weight_bits` bits (biases and layer norms kept at 32-bit, matching
    /// the FQ-BERT storage format).
    pub fn encoder_weight_bytes_quantized(&self, weight_bits: u32) -> u64 {
        let h = self.config.hidden;
        let i = self.config.intermediate;
        let matrix_params = self.config.layers * (4 * h * h + h * i + i * h);
        let other_params = self.encoder_params - matrix_params;
        (matrix_params as u64 * u64::from(weight_bits)).div_ceil(8) + 4 * other_params as u64
    }

    /// Weight bytes that must stream from off-chip memory per inference when
    /// the encoder weights are stored at `weight_bits` bits (the embeddings
    /// and task head stay on the CPU in the paper's system partitioning).
    pub fn streamed_weight_bytes(&self, weight_bits: u32) -> u64 {
        self.encoder_weight_bytes_quantized(weight_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_matches_published_scale() {
        let profile = ModelProfile::new(&BertConfig::bert_base(), 128);
        // ~110 M parameters and > 20 GFLOPs at sequence length 128 — the
        // figures quoted in the paper's introduction.
        let params = profile.total_params();
        assert!(
            (100_000_000..125_000_000).contains(&params),
            "BERT-base parameter count {params} outside the expected range"
        );
        assert!(
            profile.total_flops() > 20_000_000_000,
            "BERT-base at seq 128 should exceed 20 GFLOPs, got {}",
            profile.total_flops()
        );
        // > 320 MB of FP32 parameters.
        assert!(profile.weight_bytes_fp32() > 320 * 1024 * 1024);
    }

    #[test]
    fn quantized_encoder_weights_shrink_by_roughly_8x() {
        let profile = ModelProfile::new(&BertConfig::bert_base(), 128);
        let fp32 = 4 * profile.encoder_params as u64;
        let int4 = profile.encoder_weight_bytes_quantized(4);
        let ratio = fp32 as f64 / int4 as f64;
        assert!(
            (7.0..8.0).contains(&ratio),
            "4-bit encoder compression ratio {ratio} not in the expected band"
        );
    }

    #[test]
    fn macs_scale_linearly_with_layers() {
        let base = BertConfig::bert_base();
        let mut half = base.clone();
        half.layers = 6;
        let p_full = ModelProfile::new(&base, 128);
        let p_half = ModelProfile::new(&half, 128);
        assert_eq!(p_full.encoder_macs, 2 * p_half.encoder_macs);
    }

    #[test]
    fn attention_term_grows_quadratically_with_sequence() {
        let cfg = BertConfig::bert_base();
        let short = ModelProfile::new(&cfg, 32);
        let long = ModelProfile::new(&cfg, 64);
        // The projection/FFN part scales linearly; the attention part
        // quadratically — so doubling the sequence more than doubles MACs.
        assert!(long.encoder_macs > 2 * short.encoder_macs);
        assert!(long.encoder_macs < 3 * short.encoder_macs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_sequence_length_panics() {
        let _ = ModelProfile::new(&BertConfig::bert_base(), 0);
    }

    #[test]
    fn tiny_profile_consistency() {
        let cfg = BertConfig::tiny(100, 32, 2);
        let p = ModelProfile::new(&cfg, 16);
        assert_eq!(
            p.total_params(),
            p.embedding_params + p.encoder_params + p.classifier_params
        );
        assert_eq!(p.total_flops(), 2 * p.total_macs());
        assert!(p.streamed_weight_bytes(4) < p.weight_bytes_fp32());
    }
}
