//! Parameter containers for the building blocks of the encoder.

use fqbert_tensor::{xavier_uniform, RngSource, Tensor};

/// A dense (fully connected) layer's parameters: `y = x · W + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix of shape `[in_features, out_features]`.
    pub weight: Tensor,
    /// Bias vector of shape `[out_features]`.
    pub bias: Tensor,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer.
    pub fn new(rng: &mut RngSource, in_features: usize, out_features: usize) -> Self {
        Self {
            weight: xavier_uniform(rng, in_features, out_features),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Number of scalar parameters (weights plus bias).
    pub fn num_params(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }
}

/// Learnable layer-normalization parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormParams {
    /// Per-feature scale, initialised to 1.
    pub gamma: Tensor,
    /// Per-feature shift, initialised to 0.
    pub beta: Tensor,
}

impl LayerNormParams {
    /// Creates identity layer-norm parameters for `features` features.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
        }
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.gamma.numel() + self.beta.numel()
    }
}

/// Parameters of one encoder layer (multi-head self-attention + FFN, each
/// followed by an `Add & LN` block) — the structure in the middle panel of
/// Fig. 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderLayerParams {
    /// Query projection.
    pub query: Linear,
    /// Key projection.
    pub key: Linear,
    /// Value projection.
    pub value: Linear,
    /// Attention output projection.
    pub attn_output: Linear,
    /// Layer norm after the attention residual.
    pub attn_layer_norm: LayerNormParams,
    /// First FFN projection (hidden → intermediate).
    pub ffn1: Linear,
    /// Second FFN projection (intermediate → hidden).
    pub ffn2: Linear,
    /// Layer norm after the FFN residual.
    pub ffn_layer_norm: LayerNormParams,
}

impl EncoderLayerParams {
    /// Creates a randomly initialised encoder layer.
    pub fn new(rng: &mut RngSource, hidden: usize, intermediate: usize) -> Self {
        Self {
            query: Linear::new(rng, hidden, hidden),
            key: Linear::new(rng, hidden, hidden),
            value: Linear::new(rng, hidden, hidden),
            attn_output: Linear::new(rng, hidden, hidden),
            attn_layer_norm: LayerNormParams::new(hidden),
            ffn1: Linear::new(rng, hidden, intermediate),
            ffn2: Linear::new(rng, intermediate, hidden),
            ffn_layer_norm: LayerNormParams::new(hidden),
        }
    }

    /// Number of scalar parameters in the layer.
    pub fn num_params(&self) -> usize {
        self.query.num_params()
            + self.key.num_params()
            + self.value.num_params()
            + self.attn_output.num_params()
            + self.attn_layer_norm.num_params()
            + self.ffn1.num_params()
            + self.ffn2.num_params()
            + self.ffn_layer_norm.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_params() {
        let mut rng = RngSource::seed_from_u64(0);
        let l = Linear::new(&mut rng, 8, 16);
        assert_eq!(l.in_features(), 8);
        assert_eq!(l.out_features(), 16);
        assert_eq!(l.num_params(), 8 * 16 + 16);
        assert!(l.bias.as_slice().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn layer_norm_initialised_to_identity() {
        let ln = LayerNormParams::new(4);
        assert!(ln.gamma.as_slice().iter().all(|&g| g == 1.0));
        assert!(ln.beta.as_slice().iter().all(|&b| b == 0.0));
        assert_eq!(ln.num_params(), 8);
    }

    #[test]
    fn encoder_layer_parameter_count() {
        let mut rng = RngSource::seed_from_u64(1);
        let hidden = 64;
        let inter = 128;
        let layer = EncoderLayerParams::new(&mut rng, hidden, inter);
        // 4 hidden×hidden projections + 2 FFN matrices + biases + 2 layer norms.
        let expected = 4 * (hidden * hidden + hidden)
            + (hidden * inter + inter)
            + (inter * hidden + hidden)
            + 2 * 2 * hidden;
        assert_eq!(layer.num_params(), expected);
    }

    #[test]
    fn initialisation_is_seeded() {
        let a = EncoderLayerParams::new(&mut RngSource::seed_from_u64(7), 16, 32);
        let b = EncoderLayerParams::new(&mut RngSource::seed_from_u64(7), 16, 32);
        assert_eq!(a, b);
    }
}
