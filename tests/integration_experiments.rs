//! Smoke tests for the experiment harness itself: the quick experiment
//! configuration, the report formatting, and the quantization sweeps used by
//! the figure/table binaries.

use fqbert_autograd::{FakeQuantSpec, Graph};
use fqbert_bench::{markdown_table, ExperimentConfig};
use fqbert_bert::{BertConfig, BertModel, Trainer};
use fqbert_core::{CompressionReport, QatHook};
use fqbert_nlp::{MnliConfig, MnliGenerator};
use fqbert_quant::{tune_clip_threshold, QuantConfig};
use fqbert_tensor::RngSource;

#[test]
fn quick_experiment_config_trains_and_quantizes() {
    let mut config = ExperimentConfig::quick();
    // Shrink further so the smoke test stays fast even in debug CI runs: a
    // small vocabulary and short sentences keep the task learnable from a
    // few hundred examples.
    config.sst2.train_size = 280;
    config.sst2.dev_size = 80;
    config.sst2.sentiment_words = 6;
    config.sst2.neutral_words = 10;
    config.sst2.min_words = 3;
    config.sst2.max_words = 6;
    config.sst2.negation_prob = 0.0;
    config.sst2.label_noise = 0.0;
    config.sst2.max_len = 12;
    config.float_trainer.epochs = 4;
    config.float_trainer.batch_size = 8;
    config.float_trainer.learning_rate = 3e-3;
    config.qat_trainer.epochs = 1;

    let mut task = config.train_sst2();
    assert!(
        task.float_accuracy > 55.0,
        "float accuracy {}",
        task.float_accuracy
    );

    let hook = config.qat_finetune(&mut task, QuantConfig::fq_bert());
    assert!(hook.observed_sites() > 10);
    let int_model = fqbert_core::convert(&task.model, &hook).expect("conversion");
    let acc = fqbert_core::evaluate_int_model(&int_model, &task.dataset.dev)
        .expect("evaluation")
        .accuracy;
    assert!(acc > 50.0, "integer accuracy {acc}");
}

#[test]
fn bitwidth_sweep_shape_matches_figure_three() {
    // The PTQ sweep of Fig. 3 in miniature: accuracy must be roughly flat at
    // 8 bits and collapse towards chance at 2 bits without clipping.
    let mut config = ExperimentConfig::quick();
    config.sst2.train_size = 280;
    config.sst2.dev_size = 80;
    config.sst2.sentiment_words = 6;
    config.sst2.neutral_words = 10;
    config.sst2.min_words = 3;
    config.sst2.max_words = 6;
    config.sst2.negation_prob = 0.0;
    config.sst2.label_noise = 0.0;
    config.sst2.max_len = 12;
    config.float_trainer.epochs = 4;
    config.float_trainer.batch_size = 8;
    config.float_trainer.learning_rate = 3e-3;
    let task = config.train_sst2();

    let eval_at = |bits: u32| -> f64 {
        struct Hook {
            bits: u32,
        }
        impl fqbert_bert::ForwardHook for Hook {
            fn on_weight(
                &mut self,
                graph: &mut Graph,
                id: fqbert_autograd::VarId,
                site: fqbert_bert::Site,
            ) -> fqbert_autograd::VarId {
                if self.bits >= 32 || site.kind == fqbert_bert::SiteKind::EmbeddingTable {
                    return id;
                }
                graph
                    .fake_quant(id, FakeQuantSpec::no_clip(self.bits))
                    .unwrap_or(id)
            }
        }
        let mut hook = Hook { bits };
        Trainer::evaluate(&task.model, &task.dataset.dev, &mut hook)
            .expect("evaluation")
            .accuracy
    };

    let acc32 = eval_at(32);
    let acc8 = eval_at(8);
    let acc2 = eval_at(2);
    assert!(acc32 > 65.0, "float accuracy {acc32}");
    assert!(
        acc8 > acc32 - 10.0,
        "8-bit accuracy {acc8} vs float {acc32}"
    );
    // On this miniature smoke-test task 2-bit accuracy can survive by luck,
    // so the monotone degradation is asserted on the weight reconstruction
    // error instead (the full-scale accuracy sweep is produced by the
    // fig3_bitwidth binary).
    let weight_error_at = |bits: u32| -> f32 {
        let w = &task.model.encoder_layers[0].query.weight;
        fqbert_quant::QuantParams::for_weights(w, bits, None)
            .expect("params")
            .quantization_mse(w)
    };
    assert!(
        weight_error_at(2) > weight_error_at(8),
        "2-bit weight error must exceed 8-bit weight error"
    );
    assert!(acc2 > 0.0);
}

#[test]
fn clip_tuning_improves_low_bitwidth_quantization_of_trained_weights() {
    // Use actual trained-model-like weights (Gaussian with outliers).
    let mut rng = RngSource::seed_from_u64(2021);
    let mut data = rng.normal_tensor(&[4096], 0.0, 0.08).into_vec();
    data[0] = 0.9;
    data[1] = -0.85;
    let weights = fqbert_tensor::Tensor::from_vec(data, &[64, 64]).expect("shape");
    let result = tune_clip_threshold(&weights, 2, 64).expect("search");
    assert!(result.mse < result.mse_no_clip * 0.8);
}

#[test]
fn compression_report_for_bert_base_matches_paper_headline() {
    let mut cfg = BertConfig::bert_base();
    cfg.vocab_size = 64; // keep construction cheap; byte accounting uses shapes only
    cfg.max_len = 16;
    let model = BertModel::new(cfg, 0);
    let report = CompressionReport::for_model(&model, &QuantConfig::fq_bert());
    let ratio = report.encoder_ratio(&model);
    assert!((7.5..8.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn mnli_generator_and_markdown_report_are_usable_by_the_binaries() {
    let splits = MnliGenerator::new(MnliConfig::tiny()).generate(1);
    assert_eq!(splits.matched.num_classes, 3);
    assert!(!splits.mismatched.dev.is_empty());

    let table = markdown_table(
        &["platform", "fps/W"],
        &[vec!["ZCU111".to_string(), "3.18".to_string()]],
    );
    assert!(table.contains("ZCU111"));
    assert!(table.lines().count() == 3);
}

#[test]
fn calibration_only_hook_does_not_perturb_the_model() {
    let config = ExperimentConfig::quick();
    let dataset = fqbert_nlp::Sst2Generator::new(fqbert_nlp::Sst2Config::tiny()).generate(4);
    let model = BertModel::new(
        config.model_config(dataset.vocab_size, dataset.max_len, dataset.num_classes),
        3,
    );
    let float_report = Trainer::evaluate_float(&model, &dataset.dev).expect("evaluation");
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    let calib_report = Trainer::evaluate(&model, &dataset.dev, &mut hook).expect("evaluation");
    assert_eq!(float_report.accuracy, calib_report.accuracy);
    assert!((float_report.loss - calib_report.loss).abs() < 1e-6);
}
