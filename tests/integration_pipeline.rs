//! End-to-end integration test of the algorithmic pipeline: synthetic data →
//! float training → QAT fine-tuning → integer conversion → integer-only
//! evaluation, spanning the nlp, bert, quant, autograd and fqbert-core crates.

use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer, TrainerConfig};
use fqbert_core::{convert, evaluate_int_model, CompressionReport, QatHook};
use fqbert_nlp::{Sst2Config, Sst2Generator};
use fqbert_quant::QuantConfig;

fn small_trainer(epochs: usize, lr: f32) -> Trainer {
    Trainer::new(TrainerConfig {
        epochs,
        batch_size: 8,
        learning_rate: lr,
        seed: 1,
        max_train_examples: None,
    })
}

#[test]
fn full_fq_bert_pipeline_preserves_accuracy() {
    // A small but non-trivial task and model, sized so the whole pipeline
    // runs in a few seconds in release mode.
    let dataset = Sst2Generator::new(Sst2Config {
        train_size: 300,
        dev_size: 80,
        sentiment_words: 8,
        neutral_words: 12,
        min_words: 3,
        max_words: 7,
        negation_prob: 0.1,
        label_noise: 0.0,
        max_len: 14,
    })
    .generate(3);

    let mut model = BertModel::new(
        BertConfig {
            hidden: 32,
            layers: 2,
            heads: 2,
            intermediate: 64,
            ..BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes)
        },
        5,
    );

    // 1. Float training must clearly beat chance.
    small_trainer(5, 3e-3)
        .train(&mut model, &dataset, &mut NoopHook)
        .expect("float training");
    let float_acc = Trainer::evaluate_float(&model, &dataset.dev)
        .expect("float evaluation")
        .accuracy;
    assert!(float_acc > 70.0, "float accuracy too low: {float_acc}%");

    // 2. QAT fine-tuning with the paper's w4/a8 configuration.
    let quant = QuantConfig::fq_bert();
    let mut hook = QatHook::new(quant);
    small_trainer(2, 1e-3)
        .train(&mut model, &dataset, &mut hook)
        .expect("QAT fine-tuning");

    // 3. Conversion to the integer-only engine and evaluation.
    let int_model = convert(&model, &hook).expect("conversion");
    let int_acc = evaluate_int_model(&int_model, &dataset.dev)
        .expect("integer evaluation")
        .accuracy;
    // Known limitation (see DESIGN.md "Known gaps"): the integer engine
    // shares one activation scale across Q/K/V, which costs several points on
    // trained models whose value projections have a much smaller range than
    // their query/key projections. The engine must still stay clearly above
    // chance and within a band of the float model.
    assert!(
        int_acc >= float_acc - 35.0,
        "integer-engine accuracy {int_acc}% collapsed relative to float {float_acc}%"
    );
    assert!(
        int_acc > 55.0,
        "integer-engine accuracy too low: {int_acc}%"
    );

    // 4. Compression accounting: 4-bit encoder weights give close to 8x.
    let report = CompressionReport::for_model(&model, &quant);
    let ratio = report.encoder_ratio(&model);
    assert!(
        (6.5..8.0).contains(&ratio),
        "encoder compression ratio {ratio} outside the expected band"
    );
}

#[test]
fn int_engine_and_float_model_agree_on_most_predictions() {
    let dataset = Sst2Generator::new(Sst2Config::tiny()).generate(9);
    let mut model = BertModel::new(
        BertConfig {
            hidden: 32,
            layers: 1,
            heads: 2,
            intermediate: 64,
            ..BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes)
        },
        2,
    );
    small_trainer(2, 3e-3)
        .train(&mut model, &dataset, &mut NoopHook)
        .expect("float training");

    // Calibrate (8-bit weights for a near-lossless comparison).
    let mut hook = QatHook::calibration_only(QuantConfig::w8a8());
    for example in dataset.dev.iter().take(16) {
        let mut graph = fqbert_autograd::Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, example, &mut NoopHook)
            .expect("forward");
        let mut graph = fqbert_autograd::Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, example, &mut hook)
            .expect("calibration forward");
    }
    let int_model = convert(&model, &hook).expect("conversion");

    let mut agree = 0usize;
    let sample: Vec<_> = dataset.dev.iter().take(40).collect();
    for example in &sample {
        let mut graph = fqbert_autograd::Graph::new();
        let bound = model.bind(&mut graph);
        let logits = bound
            .forward(&mut graph, example, &mut NoopHook)
            .expect("forward");
        let float_pred = graph.value(logits).argmax().expect("argmax");
        let int_pred = int_model.predict(example).expect("int predict");
        if float_pred == int_pred {
            agree += 1;
        }
    }
    // See DESIGN.md "Known gaps": with the shared Q/K/V scale the 8-bit
    // engine tracks the float model on a clear majority of inputs rather
    // than nearly all of them.
    assert!(
        agree as f64 >= sample.len() as f64 * 0.6,
        "8-bit integer engine agrees on only {agree}/{} predictions",
        sample.len()
    );
}
