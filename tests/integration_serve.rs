//! Integration tests of the multi-model serving stack on trained models:
//! artifacts → plain-config registry → per-model dynamic batching queues →
//! TCP server, with responses routed by model name proven bit-identical to
//! driving `Engine::classify_batch` directly on the same backend.

use fqbert_bench::ExperimentConfig;
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EngineBuilder};
use fqbert_serve::{registry, BatchPolicy, Client, ModelRegistry, Server, ServerConfig};
use std::time::Duration;

fn quick_task() -> (fqbert_bench::TrainedTask, fqbert_core::QatHook) {
    let mut config = ExperimentConfig::quick();
    config.sst2.train_size = 280;
    config.sst2.dev_size = 80;
    config.sst2.sentiment_words = 6;
    config.sst2.neutral_words = 10;
    config.sst2.min_words = 3;
    config.sst2.max_words = 6;
    config.sst2.negation_prob = 0.0;
    config.sst2.label_noise = 0.0;
    config.sst2.max_len = 12;
    config.float_trainer.epochs = 4;
    config.float_trainer.batch_size = 8;
    config.float_trainer.learning_rate = 3e-3;
    config.qat_trainer.epochs = 1;
    let mut task = config.train_sst2();
    let hook = config.qat_finetune(&mut task, QuantConfig::fq_bert());
    (task, hook)
}

#[test]
fn multi_model_server_routes_by_name_and_matches_direct_inference() {
    let (task, hook) = quick_task();

    // Two bit-widths of the same trained task: w4 from the QAT hook, w8
    // from post-training calibration — genuinely different quantizations.
    let w4_engine = task
        .engine_with_hook(BackendKind::Int, &hook)
        .expect("w4 engine");
    let w8_engine = task
        .engine_builder()
        .quant(QuantConfig::w8a8())
        .backend(BackendKind::Int)
        .build(&task.model)
        .expect("w8 engine");

    // Quantize once → serve many: both models go to disk and come back
    // through the plain-text registry config.
    let dir = std::env::temp_dir();
    let w4_path = dir.join("fqbert_serve_w4.fqbt");
    let w8_path = dir.join("fqbert_serve_w8.fqbt");
    w4_engine.save(&w4_path).expect("save w4");
    w8_engine.save(&w8_path).expect("save w8");
    let config_text = format!(
        "# fqbert-serve registry\n\
         sst2-w4=int:{}\n\
         sst2-w8=int:{}\n\
         sst2-sim=sim:{}\n",
        w4_path.display(),
        w8_path.display(),
        w4_path.display()
    );
    let specs = registry::parse_config(&config_text).expect("config parses");
    assert_eq!(specs.len(), 3);
    let registry = ModelRegistry::load(&specs).expect("registry loads artifacts");
    assert_eq!(registry.len(), 3);

    // Reference engines loaded from the same artifacts, driven directly.
    let w4_direct = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Int)
        .load(&w4_path)
        .expect("direct w4");
    let w8_direct = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Int)
        .load(&w8_path)
        .expect("direct w8");

    let server = Server::spawn(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(3),
                max_queue: usize::MAX,
            },
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr();

    // Concurrent clients hammer both bit-widths with overlapping traffic;
    // every response must carry exactly the logits the direct engine
    // produces for those texts.
    let text_sets: [&[&str]; 3] = [
        &["pos0 pos1 filler2", "neg0 filler1 neg3"],
        &["pos2 neg0 pos4"],
        &["neg1 neg2", "pos0 filler3", "pos1 pos2 pos3"],
    ];
    let mut workers = Vec::new();
    for worker in 0..6 {
        let model = if worker % 2 == 0 {
            "sst2-w4"
        } else {
            "sst2-w8"
        };
        let texts: &[&str] = text_sets[worker % text_sets.len()];
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let response = client.classify_texts(model, texts).expect("classify");
            (model, texts, response)
        }));
    }
    for worker in workers {
        let (model, texts, response) = worker.join().expect("client thread");
        assert_eq!(response.model, model);
        let direct = match model {
            "sst2-w4" => w4_direct.classify_texts(texts).expect("direct"),
            _ => w8_direct.classify_texts(texts).expect("direct"),
        };
        assert_eq!(response.results.len(), direct.len());
        for (served, reference) in response.results.iter().zip(&direct) {
            assert_eq!(served.prediction, reference.prediction);
            assert_eq!(
                served.label,
                task.dataset.task.class_name(reference.prediction)
            );
            assert_eq!(served.logits.len(), reference.logits.len());
            for (a, b) in served.logits.iter().zip(&reference.logits) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "served logits must be bit-identical to direct \
                     classify_batch on {model}"
                );
            }
        }
    }

    // The simulated variant serves the same w4 logits while exposing the
    // accelerator cycle model in the response.
    let mut client = Client::connect(addr).expect("connect");
    let texts = text_sets[0];
    let sim_response = client.classify_texts("sst2-sim", texts).expect("sim");
    let w4_reference = w4_direct.classify_texts(texts).expect("direct");
    for (served, reference) in sim_response.results.iter().zip(&w4_reference) {
        for (a, b) in served.logits.iter().zip(&reference.logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    let sim = sim_response.sim.expect("cycle-model cost");
    assert!(sim.total_cycles > 0 && sim.latency_ms > 0.0);

    // Graceful in-process shutdown; queues drained every request.
    server.shutdown();
    let served_sequences: u64 = server.queue_stats().iter().map(|(_, s)| s.sequences).sum();
    let expected: u64 = (0..6)
        .map(|w| text_sets[w % text_sets.len()].len() as u64)
        .sum::<u64>()
        + texts.len() as u64;
    assert_eq!(served_sequences, expected);

    std::fs::remove_file(&w4_path).ok();
    std::fs::remove_file(&w8_path).ok();
}
