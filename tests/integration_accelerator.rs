//! Integration tests spanning the quantization stack and the accelerator
//! simulator: the PU datapath must reproduce the integer reference engine
//! bit-for-bit, and the system-level models must reproduce the paper's
//! deployment numbers.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::pe::OperandMode;
use fqbert_accel::{
    cycle_model, AcceleratorConfig, PowerModel, ProcessingUnit, ResourceModel, Scheduler,
};
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert, QatHook};
use fqbert_nlp::Example;
use fqbert_quant::{QuantConfig, Requantizer};
use fqbert_tensor::IntTensor;

fn calibrated_int_model() -> fqbert_core::IntBertModel {
    let model = BertModel::new(BertConfig::tiny(40, 16, 2), 21);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..6usize {
        let tokens = vec![2, 4 + i, 9 + i, 6, 3];
        let example = Example {
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            token_ids: tokens,
            label: 0,
        };
        let mut graph = fqbert_autograd::Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example, &mut hook)
            .expect("calibration forward");
    }
    convert(&model, &hook).expect("conversion")
}

#[test]
fn pu_datapath_matches_integer_engine_bit_exactly() {
    let int_model = calibrated_int_model();
    let embedded = int_model
        .embed(&[2, 5, 11, 7, 3], &[0, 0, 0, 0, 0])
        .expect("embedding");
    let config = AcceleratorConfig::zcu102_n8_m16();
    let pu = ProcessingUnit::new(
        config.pes_per_pu,
        config.multipliers_per_bim,
        config.bim_variant,
    );

    for (name, layer) in [
        ("query", &int_model.layers[0].query),
        ("key", &int_model.layers[0].key),
        ("ffn1", &int_model.layers[0].ffn1),
    ] {
        for row in 0..embedded.dims()[0] {
            let x_row = embedded.row(row);
            let x = IntTensor::from_vec(x_row.to_vec(), &[1, x_row.len()]).expect("shape");
            let reference = layer.forward(&x).expect("reference forward");

            let weight = layer.weight_codes();
            let columns: Vec<Vec<i8>> = (0..layer.out_features())
                .map(|c| (0..layer.in_features()).map(|r| weight.row(r)[c]).collect())
                .collect();
            let effective = f64::from(layer.output_scale())
                / (f64::from(layer.input_scale()) * f64::from(layer.weight_scale()));
            let requant = Requantizer::from_scale(effective, 8).expect("scale");
            let (codes, cycles) = pu.matvec(
                x_row,
                &columns,
                layer.bias_codes().as_slice(),
                &requant,
                OperandMode::Act8Weight4,
            );
            assert_eq!(
                codes,
                reference.as_slice(),
                "PU datapath deviates from the integer engine on {name}, row {row}"
            );
            assert!(cycles > 0);
        }
    }
}

#[test]
fn deployment_models_reproduce_the_published_numbers() {
    let shape = EncoderShape::bert_base();
    let resource_model = ResourceModel::new();
    let power_model = PowerModel::new();
    let published = [
        (AcceleratorConfig::zcu102_n8_m16(), 43.89, 1751u64, 9.8),
        (AcceleratorConfig::zcu102_n16_m8(), 45.35, 1671, 9.8),
        (AcceleratorConfig::zcu111_n16_m16(), 23.79, 3287, 13.2),
    ];
    for (config, latency_ref, dsp_ref, power_ref) in published {
        let latency = cycle_model::estimate_latency(&config, &shape, 12).latency_ms;
        let resources = resource_model.estimate(&config);
        let power = power_model.board_watts(&config);
        assert!(
            (latency - latency_ref).abs() / latency_ref < 0.05,
            "latency {latency} vs {latency_ref} for {config:?}"
        );
        assert_eq!(resources.dsp48, dsp_ref);
        assert!(resources.fits(config.device));
        assert!((power - power_ref).abs() < 0.1);
    }
}

#[test]
fn weight_streaming_is_overlapped_at_published_bandwidths() {
    for config in AcceleratorConfig::table_iii_configs() {
        let trace = Scheduler::new(config).schedule_layer(&EncoderShape::bert_base());
        assert_eq!(
            trace.dma_stall_cycles, 0,
            "DMA must be hidden behind compute"
        );
        assert!(trace.pe_utilization() > 0.9);
    }
}

#[test]
fn fpga_beats_cpu_and_gpu_on_energy_efficiency() {
    let rows = fqbert_perf::comparison_table(&BertConfig::bert_base(), 128);
    assert_eq!(rows.len(), 4);
    let cpu = &rows[0];
    let gpu = &rows[1];
    let zcu102 = &rows[2];
    let zcu111 = &rows[3];
    assert!(zcu111.fps_per_watt > 10.0 * gpu.fps_per_watt);
    assert!(zcu111.fps_per_watt > 25.0 * cpu.fps_per_watt);
    assert!(zcu102.fps_per_watt > gpu.fps_per_watt);
    assert!(gpu.latency_ms < cpu.latency_ms);
    assert!(zcu111.latency_ms < gpu.latency_ms);
}
