//! Integration tests of the unified runtime: one `InferenceBackend` trait
//! over the float, integer and accelerator-simulated engines, batched
//! inference equal to one-at-a-time inference, and artifact round trips.

use fqbert_bench::ExperimentConfig;
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, EngineBuilder, InferenceBackend};

fn quick_task() -> (fqbert_bench::TrainedTask, fqbert_core::QatHook) {
    let mut config = ExperimentConfig::quick();
    config.sst2.train_size = 280;
    config.sst2.dev_size = 80;
    config.sst2.sentiment_words = 6;
    config.sst2.neutral_words = 10;
    config.sst2.min_words = 3;
    config.sst2.max_words = 6;
    config.sst2.negation_prob = 0.0;
    config.sst2.label_noise = 0.0;
    config.sst2.max_len = 12;
    config.float_trainer.epochs = 4;
    config.float_trainer.batch_size = 8;
    config.float_trainer.learning_rate = 3e-3;
    config.qat_trainer.epochs = 1;
    let mut task = config.train_sst2();
    let hook = config.qat_finetune(&mut task, QuantConfig::fq_bert());
    (task, hook)
}

#[test]
fn all_three_backends_serve_through_one_trait() {
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev;

    let float_engine = task
        .engine_with_hook(BackendKind::Float, &hook)
        .expect("float engine");
    let int_engine = task
        .engine_with_hook(BackendKind::Int, &hook)
        .expect("int engine");
    let sim_engine = task
        .engine_with_hook(BackendKind::Sim, &hook)
        .expect("sim engine");

    // Trait-object access: every backend is driven identically.
    let backends: Vec<&dyn InferenceBackend> = vec![
        float_engine.backend(),
        int_engine.backend(),
        sim_engine.backend(),
    ];
    assert_eq!(backends[0].name(), "float");
    assert_eq!(backends[1].name(), "int");
    assert_eq!(backends[2].name(), "sim");
    assert_eq!(backends[0].precision().to_string(), "fp32");
    assert_eq!(backends[1].precision().to_string(), "w4/a8");
    assert!(backends[0].cost_model().is_none());
    assert!(backends[2].cost_model().is_some());

    let batch = EncodedBatch::from_examples(dev[..40.min(dev.len())].to_vec());
    let float_out = backends[0].classify_batch(&batch).expect("float batch");
    let int_out = backends[1].classify_batch(&batch).expect("int batch");
    let sim_out = backends[2].classify_batch(&batch).expect("sim batch");

    // The simulated backend IS the integer engine functionally...
    assert_eq!(int_out.logits, sim_out.logits);
    assert_eq!(int_out.predictions, sim_out.predictions);
    // ...but it charges an accelerator cost.
    assert!(int_out.cost.is_none());
    let cost = sim_out.cost.expect("sim cost");
    assert!(cost.total_cycles > 0);
    assert!(cost.latency_ms > 0.0);

    // Quantization preserves most decisions of the float baseline.
    let agree = float_out
        .predictions
        .iter()
        .zip(&int_out.predictions)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree * 10 >= batch.len() * 7,
        "int backend agrees with float on only {agree}/{} predictions",
        batch.len()
    );

    // Accuracy through the engine wrapper, all above chance.
    for engine in [&float_engine, &int_engine, &sim_engine] {
        let summary = engine.evaluate(dev).expect("evaluate");
        assert_eq!(summary.num_examples, dev.len());
        assert!(
            summary.accuracy > 55.0,
            "{} accuracy {}",
            engine.backend().name(),
            summary.accuracy
        );
    }
}

#[test]
fn batched_inference_is_bit_identical_to_one_at_a_time() {
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev[..24];
    for kind in [BackendKind::Float, BackendKind::Int] {
        let engine = task.engine_with_hook(kind, &hook).expect("engine");
        let batched = engine
            .classify_batch(&EncodedBatch::from_examples(dev.to_vec()))
            .expect("batched");
        let mut singly = Vec::new();
        for ex in dev {
            let out = engine
                .classify_batch(&EncodedBatch::from_examples(vec![ex.clone()]))
                .expect("single");
            singly.extend(out.logits);
        }
        for (i, (a, b)) in batched.logits.iter().zip(&singly).enumerate() {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "batched and single logits diverge on example {i} ({:?} backend)",
                    engine.backend().name()
                );
            }
        }
    }
}

#[test]
fn sharded_execution_matches_serial_on_a_trained_model() {
    // End-to-end version of the runtime's parallel property test, on a
    // genuinely trained model: engines sharding across a worker pool return
    // bit-identical logits and identical accuracy to the serial engine.
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev;
    for kind in BackendKind::ALL {
        let serial = task
            .engine_builder()
            .backend(kind)
            .threads(1)
            .build_with_hook(&task.model, &hook)
            .expect("serial engine");
        let parallel = task
            .engine_builder()
            .backend(kind)
            .threads(4)
            .build_with_hook(&task.model, &hook)
            .expect("parallel engine");
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);

        let batch = EncodedBatch::from_examples(dev[..32.min(dev.len())].to_vec());
        let a = serial.classify_batch(&batch).expect("serial batch");
        let b = parallel.classify_batch(&batch).expect("parallel batch");
        for (x, y) in a.logits.iter().flatten().zip(b.logits.iter().flatten()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{kind} logits diverge");
        }
        assert_eq!(a.predictions, b.predictions);
        if kind == BackendKind::Sim {
            assert_eq!(a.sequence_costs, b.sequence_costs, "sim costs diverge");
            assert_eq!(
                a.cost.expect("serial cost").total_cycles,
                b.cost.expect("parallel cost").total_cycles
            );
        }

        let sa = serial.evaluate(dev).expect("serial eval");
        let sb = parallel.evaluate(dev).expect("parallel eval");
        assert_eq!(sa.accuracy, sb.accuracy, "{kind} eval accuracy diverges");
        assert_eq!(sa.simulated_latency_ms, sb.simulated_latency_ms);
    }
}

#[test]
fn all_padding_sequence_is_a_clean_error_not_a_panic() {
    let (task, hook) = quick_task();
    let int_engine = task
        .engine_with_hook(BackendKind::Int, &hook)
        .expect("int engine");
    let sim_engine = task
        .engine_with_hook(BackendKind::Sim, &hook)
        .expect("sim engine");

    // One valid example plus one whose attention mask is all padding —
    // a zero-length sequence that used to panic inside the softmax LUT.
    let mut empty = task.dataset.dev[0].clone();
    for m in empty.attention_mask.iter_mut() {
        *m = 0;
    }
    let batch = EncodedBatch::from_examples(vec![task.dataset.dev[1].clone(), empty]);
    assert_eq!(batch.seq_lens()[1], 0);

    for engine in [&int_engine, &sim_engine] {
        let err = engine
            .classify_batch(&batch)
            .expect_err("all-padding example must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("all-padding") || msg.contains("zero-length"),
            "unhelpful error for {}: {msg}",
            engine.backend().name()
        );
    }

    // The valid examples still classify once the empty one is dropped.
    let ok = int_engine
        .classify_batch(&EncodedBatch::from_examples(vec![
            task.dataset.dev[1].clone()
        ]))
        .expect("valid example");
    assert_eq!(ok.predictions.len(), 1);
}

#[test]
fn blocked_gemm_logits_match_naive_projection_path() {
    // The engine's int backend runs every projection through the blocked
    // packed-weight kernel; replaying the encoder with the naive
    // `forward_naive` reference on each projection must give bit-identical
    // logits (the requantizer datapath is shared, so any divergence would
    // come from the GEMM itself).
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev[..8];
    let int_engine = task
        .engine_with_hook(BackendKind::Int, &hook)
        .expect("int engine");
    let model = int_engine
        .backend()
        .int_model()
        .expect("int backend has a model");

    for layer in &model.layers {
        for linear in [
            &layer.query,
            &layer.key,
            &layer.value,
            &layer.attn_output,
            &layer.ffn1,
            &layer.ffn2,
        ] {
            // Probe each projection with a deterministic activation pattern.
            let rows = 5usize;
            let inf = linear.in_features();
            let x = fqbert_tensor::IntTensor::from_vec(
                (0..rows * inf)
                    .map(|i| ((i * 131 + 17) % 255) as i8)
                    .collect(),
                &[rows, inf],
            )
            .expect("probe shape");
            assert_eq!(
                linear.forward(&x).expect("blocked"),
                linear.forward_naive(&x).expect("naive"),
                "blocked kernel diverges from naive reference"
            );
        }
    }

    // End to end: batched logits through the blocked path are stable and
    // bit-identical across repeated runs (packing is deterministic).
    let batch = EncodedBatch::from_examples(dev.to_vec());
    let a = int_engine.classify_batch(&batch).expect("first run");
    let b = int_engine.classify_batch(&batch).expect("second run");
    assert_eq!(a.logits, b.logits);
}

#[test]
fn artifact_round_trip_preserves_predictions_exactly() {
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev;
    let int_engine = task
        .engine_with_hook(BackendKind::Int, &hook)
        .expect("int engine");

    let path = std::env::temp_dir().join("fqbert_integration_runtime.fqbt");
    int_engine.save(&path).expect("save");
    let served = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Int)
        .load(&path)
        .expect("load");
    std::fs::remove_file(&path).ok();

    let batch = EncodedBatch::from_examples(dev.to_vec());
    let a = int_engine.classify_batch(&batch).expect("in-memory");
    let b = served.classify_batch(&batch).expect("reloaded");
    assert_eq!(
        a.logits, b.logits,
        "artifact round trip must be bit-identical"
    );
    assert_eq!(a.predictions, b.predictions);

    // The reloaded engine serves raw text with the persisted vocabulary.
    let texts = ["pos0 filler1", "neg0 neg1"];
    let in_mem = int_engine.classify_texts(&texts).expect("in-memory text");
    let from_disk = served.classify_texts(&texts).expect("artifact text");
    assert_eq!(
        in_mem.iter().map(|c| c.prediction).collect::<Vec<_>>(),
        from_disk.iter().map(|c| c.prediction).collect::<Vec<_>>()
    );
}

#[test]
fn builder_rejects_inconsistent_configurations() {
    let (task, hook) = quick_task();
    // Missing tokenizer.
    let err = EngineBuilder::new(task.dataset.task)
        .build_with_hook(&task.model, &hook)
        .expect_err("missing tokenizer must fail");
    assert!(err.to_string().contains("tokenizer"), "{err}");
    // Integer backend without calibration or hook.
    let err = EngineBuilder::new(task.dataset.task)
        .vocab(task.dataset.vocab.clone(), task.dataset.max_len)
        .backend(BackendKind::Int)
        .build(&task.model)
        .expect_err("missing calibration must fail");
    assert!(err.to_string().contains("calibration"), "{err}");
    // Task/head mismatch.
    let err = EngineBuilder::new(fqbert_nlp::TaskKind::MnliMatched)
        .vocab(task.dataset.vocab.clone(), task.dataset.max_len)
        .backend(BackendKind::Float)
        .build(&task.model)
        .expect_err("class mismatch must fail");
    assert!(err.to_string().contains("classes"), "{err}");
    // Float backend from an artifact.
    let err = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Float)
        .load(std::path::Path::new("/nonexistent.fqbt"))
        .expect_err("float-from-artifact must fail");
    assert!(!err.to_string().is_empty());
}

#[test]
fn scored_classification_adds_labels_scores_and_costs_without_touching_logits() {
    let (task, hook) = quick_task();
    let dev = &task.dataset.dev[..12];
    let sim_engine = std::sync::Arc::new(
        task.engine_with_hook(BackendKind::Sim, &hook)
            .expect("sim engine"),
    );
    let batch = EncodedBatch::from_examples(dev.to_vec());
    let scored = sim_engine.classify_scored(&batch).expect("scored");
    let plain = sim_engine.classify_batch(&batch).expect("plain");

    assert_eq!(scored.results.len(), plain.logits.len());
    let mut cost_sum = 0u64;
    for (result, (logits, prediction)) in scored
        .results
        .iter()
        .zip(plain.logits.iter().zip(&plain.predictions))
    {
        // The scored view decorates, never perturbs: identical bits.
        assert_eq!(&result.prediction, prediction);
        for (a, b) in result.logits.iter().zip(logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            result.label,
            task.dataset.task.class_name(result.prediction)
        );
        assert!((result.scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(
            fqbert_tensor::ops::argmax_slice(&result.scores),
            result.prediction
        );
        cost_sum += result.cost.expect("per-sequence sim cost").total_cycles;
    }
    // Per-sequence costs decompose the batch total exactly.
    assert_eq!(cost_sum, plain.cost.expect("batch cost").total_cycles);
    assert_eq!(
        scored.cost.expect("scored total").total_cycles,
        plain.cost.expect("batch cost").total_cycles
    );

    // One engine behind an Arc serves concurrent callers bit-identically.
    let mut threads = Vec::new();
    for _ in 0..4 {
        let engine = std::sync::Arc::clone(&sim_engine);
        let batch = batch.clone();
        threads.push(std::thread::spawn(move || {
            engine.classify_scored(&batch).expect("concurrent scored")
        }));
    }
    for thread in threads {
        let concurrent = thread.join().expect("thread");
        for (a, b) in concurrent.results.iter().zip(&scored.results) {
            assert_eq!(a.logits, b.logits);
            assert_eq!(a.prediction, b.prediction);
        }
    }
}

#[test]
fn backend_kind_strings_match_backend_names() {
    // The FromStr/Display pair uses exactly the names the backends report,
    // so config files, CLI flags and wire responses all agree.
    let (task, hook) = quick_task();
    for kind in BackendKind::ALL {
        let engine = task.engine_with_hook(kind, &hook).expect("engine");
        assert_eq!(engine.backend().name(), kind.to_string());
        assert_eq!(
            kind.to_string().parse::<BackendKind>().expect("parse"),
            kind
        );
    }
}
